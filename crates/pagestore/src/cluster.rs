//! The Page Store cluster: placement, gossip, and replica rebuild.
//!
//! Unlike PLogs, slices cannot move freely: "a Page Store must have access
//! to all log records for the pages that it is responsible for. This
//! requirement prevents us from switching Page Stores in the same way as we
//! switch Log Stores" (paper §3.4). The cluster manager therefore tracks a
//! fixed placement per slice, repairs divergence between replicas with the
//! gossip protocol (§4.1 step 6), and rebuilds replicas on fresh nodes after
//! long-term failures (§5.2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use taurus_common::config::StorageProfile;
use taurus_common::{Lsn, NodeId, PageBuf, PageId, Result, SliceKey, TaurusError};
use taurus_fabric::{Fabric, NodeKind, StorageDevice};

use crate::fragment::SliceFragment;
use crate::pool::EvictionPolicy;
use crate::pushdown::{ScanSliceRequest, ScanSliceResponse};
use crate::readpages::{ReadPagesRequest, ReadPagesResponse};
use crate::server::{ConsolidationPolicy, PageStoreServer, PageStoreStatsSnapshot, RecycleReport};

/// Construction parameters for Page Store servers spawned by the cluster.
#[derive(Clone, Copy, Debug)]
pub struct PageStoreOptions {
    pub log_cache_bytes: usize,
    pub pool_pages: usize,
    pub pool_policy: EvictionPolicy,
    pub consolidation: ConsolidationPolicy,
}

impl Default for PageStoreOptions {
    fn default() -> Self {
        PageStoreOptions {
            log_cache_bytes: 16 << 20,
            pool_pages: 4096,
            pool_policy: EvictionPolicy::Lfu,
            consolidation: ConsolidationPolicy::LogCacheCentric,
        }
    }
}

/// Cluster manager for the Page Store tier.
#[derive(Clone)]
pub struct PageStoreCluster {
    /// Shared cluster fabric (public for failure injection in tests).
    pub fabric: Fabric,
    servers: Arc<RwLock<HashMap<NodeId, Arc<PageStoreServer>>>>,
    placement: Arc<RwLock<HashMap<SliceKey, Vec<NodeId>>>>,
    options: PageStoreOptions,
    replicas: usize,
}

impl PageStoreCluster {
    pub fn new(fabric: Fabric, replicas: usize, options: PageStoreOptions) -> Self {
        PageStoreCluster {
            fabric,
            servers: Arc::new(RwLock::new(HashMap::new())),
            placement: Arc::new(RwLock::new(HashMap::new())),
            options,
            replicas,
        }
    }

    /// Spawns a Page Store server node with its own device.
    pub fn spawn_server(&self, profile: StorageProfile) -> NodeId {
        let id = self.fabric.add_node(NodeKind::PageStore);
        let device = StorageDevice::in_memory(self.fabric.clock.clone(), profile);
        let server = PageStoreServer::new(
            device,
            self.options.log_cache_bytes,
            self.options.pool_pages,
            self.options.pool_policy,
            self.options.consolidation,
        );
        self.servers.write().insert(id, server);
        id
    }

    pub fn spawn_servers(&self, n: usize, profile: StorageProfile) -> Vec<NodeId> {
        (0..n).map(|_| self.spawn_server(profile)).collect()
    }

    fn server(&self, node: NodeId) -> Result<Arc<PageStoreServer>> {
        self.servers
            .read()
            .get(&node)
            .cloned()
            .ok_or(TaurusError::NodeUnavailable(node))
    }

    /// Direct handle to a server (tests / background drivers).
    pub fn server_handle(&self, node: NodeId) -> Option<Arc<PageStoreServer>> {
        self.servers.read().get(&node).cloned()
    }

    /// All registered server nodes.
    pub fn server_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.servers.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether `node` is a registered Page Store server that the fabric
    /// currently considers up. The SAL consults this when a fragment is
    /// parked: a live node can be repaired immediately, a dead one must
    /// wait for the recovery sweep.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.servers.read().contains_key(&node) && self.fabric.is_up(node)
    }

    /// Current replica placement of a slice.
    pub fn replicas_of(&self, key: SliceKey) -> Vec<NodeId> {
        self.placement.read().get(&key).cloned().unwrap_or_default()
    }

    /// All slices the cluster knows about.
    pub fn slices(&self) -> Vec<SliceKey> {
        let mut v: Vec<SliceKey> = self.placement.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Creates a slice on `replicas` healthy Page Stores. Idempotent and
    /// safe to race: the server-side create is `or_insert` and the
    /// placement entry is only written if still absent, so two concurrent
    /// creators converge on one authoritative replica set (the loser's
    /// extra server-side replicas are just re-created no-ops).
    pub fn create_slice(&self, key: SliceKey, from: NodeId) -> Result<Vec<NodeId>> {
        if let Some(existing) = self.placement.read().get(&key) {
            return Ok(existing.clone());
        }
        let nodes = self
            .fabric
            .pick_nodes(NodeKind::PageStore, self.replicas, &[])?;
        for &n in &nodes {
            let server = self.server(n)?;
            self.fabric.call(from, n, || server.create_slice(key))?;
        }
        Ok(self.placement.write().entry(key).or_insert(nodes).clone())
    }

    /// `WriteLogs` RPC to one specific replica.
    pub fn write_logs_to(&self, node: NodeId, from: NodeId, frag: &SliceFragment) -> Result<Lsn> {
        let server = self.server(node)?;
        self.fabric.call(from, node, || server.write_logs(frag))?
    }

    /// `ReadPage` RPC to one specific replica.
    pub fn read_page_from(
        &self,
        node: NodeId,
        from: NodeId,
        key: SliceKey,
        page: PageId,
        as_of: Lsn,
    ) -> Result<(PageBuf, Lsn)> {
        let server = self.server(node)?;
        self.fabric
            .call(from, node, || server.read_page(key, page, as_of))?
    }

    /// `ReadPages` RPC to one specific replica: one round trip returns many
    /// versioned pages of a slice (see [`crate::readpages`]).
    pub fn read_pages_from(
        &self,
        node: NodeId,
        from: NodeId,
        call: &ReadPagesRequest,
    ) -> Result<ReadPagesResponse> {
        let server = self.server(node)?;
        self.fabric.call(from, node, || server.read_pages(call))?
    }

    /// `ScanSlice` RPC to one specific replica: near-data scan pushdown
    /// (see [`crate::pushdown`]).
    pub fn scan_slice_from(
        &self,
        node: NodeId,
        from: NodeId,
        call: &ScanSliceRequest,
    ) -> Result<ScanSliceResponse> {
        let server = self.server(node)?;
        self.fabric.call(from, node, || server.scan_slice(call))?
    }

    /// Page-id inventory RPC: which pages a replica's Log Directory tracks
    /// for a slice. Used by the SAL's local scan fallback.
    pub fn page_ids_of(&self, node: NodeId, from: NodeId, key: SliceKey) -> Result<Vec<PageId>> {
        let server = self.server(node)?;
        self.fabric.call(from, node, || server.page_ids(key))?
    }

    /// `GetPersistentLSN` RPC to one specific replica.
    pub fn persistent_lsn_of(&self, node: NodeId, from: NodeId, key: SliceKey) -> Result<Lsn> {
        let server = self.server(node)?;
        self.fabric
            .call(from, node, || server.get_persistent_lsn(key))?
    }

    /// `SetRecycleLSN` broadcast to all reachable replicas of a slice.
    /// Returns the aggregated reclamation report so the SAL's recycle
    /// handshake can account what the broadcast actually freed.
    pub fn set_recycle_lsn(&self, key: SliceKey, from: NodeId, lsn: Lsn) -> RecycleReport {
        let mut report = RecycleReport::default();
        for n in self.replicas_of(key) {
            if let Ok(server) = self.server(n) {
                if let Ok(Ok(r)) = self
                    .fabric
                    .call(from, n, || server.set_recycle_lsn(key, lsn))
                {
                    report.absorb(r);
                }
            }
        }
        report
    }

    /// Aggregated Page Store stats across every server (bench reporting).
    pub fn store_stats(&self) -> PageStoreStatsSnapshot {
        let mut agg = PageStoreStatsSnapshot::default();
        for s in self.servers.read().values() {
            agg.absorb(s.stats.snapshot());
        }
        agg
    }

    /// Missing-LSN-ranges RPC (the SAL's Fig. 4(c) probe).
    pub fn missing_ranges_of(
        &self,
        node: NodeId,
        from: NodeId,
        key: SliceKey,
    ) -> Result<Vec<(Lsn, Lsn)>> {
        let server = self.server(node)?;
        self.fabric
            .call(from, node, || server.missing_lsn_ranges(key))?
    }

    /// One round of the gossip protocol for a slice: every pair of live
    /// replicas exchanges fragment inventories and copies what the other is
    /// missing (paper §5.2). Returns the number of fragments transferred.
    pub fn gossip(&self, key: SliceKey) -> usize {
        let nodes = self.replicas_of(key);
        let mut transferred = 0usize;
        // Gather fragment inventories and persistent LSNs from live replicas.
        type ReplicaInventory = (Lsn, Vec<(Lsn, Lsn, Lsn)>);
        let mut inventories: HashMap<NodeId, ReplicaInventory> = HashMap::new();
        for &n in &nodes {
            if !self.fabric.is_up(n) {
                continue;
            }
            let Ok(server) = self.server(n) else { continue };
            let inv = self.fabric.call(n, n, || -> Result<ReplicaInventory> {
                Ok((server.get_persistent_lsn(key)?, server.inventory(key)?))
            });
            if let Ok(Ok(inv)) = inv {
                inventories.insert(n, inv);
            }
        }
        for (&dst, (dst_persistent, have)) in &inventories {
            let mut have_set: std::collections::HashSet<(Lsn, Lsn)> =
                have.iter().map(|(f, l, _)| (*f, *l)).collect();
            for (&src, (_, src_have)) in &inventories {
                if src == dst {
                    continue;
                }
                for &(first, last, _prev) in src_have {
                    // Skip fragments the destination already covers.
                    if last <= *dst_persistent || have_set.contains(&(first, last)) {
                        continue;
                    }
                    // dst pulls the missing fragment from src.
                    let Ok(src_server) = self.server(src) else {
                        continue;
                    };
                    let frag = self
                        .fabric
                        .call(dst, src, || src_server.get_fragment(key, first, last));
                    if let Ok(Ok(frag)) = frag {
                        let Ok(dst_server) = self.server(dst) else {
                            continue;
                        };
                        if dst_server.write_logs(&frag).is_ok() {
                            have_set.insert((first, last));
                            transferred += 1;
                        }
                    }
                }
            }
        }
        transferred
    }

    /// One gossip round across every slice (the periodic 30-minute sweep).
    pub fn gossip_all(&self) -> usize {
        self.slices().iter().map(|k| self.gossip(*k)).sum()
    }

    /// Rebuilds the replica of `key` lost with `failed` on a fresh node:
    /// picks a healthy node, copies the latest pages from a live donor, and
    /// swaps the placement entry (paper §5.2). The new replica accepts
    /// writes during the copy. Returns the new node.
    pub fn rebuild_replica(&self, key: SliceKey, failed: NodeId, from: NodeId) -> Result<NodeId> {
        let nodes = self.replicas_of(key);
        if !nodes.contains(&failed) {
            return Err(TaurusError::Internal(format!(
                "{failed} does not host {key}"
            )));
        }
        // Find a live donor.
        let donor = nodes
            .iter()
            .copied()
            .find(|&n| n != failed && self.fabric.is_up(n))
            .ok_or(TaurusError::AllReplicasFailed(key))?;
        let donor_server = self.server(donor)?;
        let export = self
            .fabric
            .call(from, donor, || donor_server.export_slice(key))??;
        let new_node = self
            .fabric
            .pick_nodes(NodeKind::PageStore, 1, &nodes)?
            .pop()
            .ok_or_else(|| TaurusError::Internal("pick_nodes(1) returned no node".into()))?;
        let new_server = self.server(new_node)?;
        let (plsn, rlsn) = (export.persistent_lsn, export.recycle_lsn);
        self.fabric.call(from, new_node, || {
            new_server.create_rebuilding_slice(key, plsn, rlsn)
        })?;
        // Swap placement first so new writes reach the rebuilding replica.
        {
            let mut placement = self.placement.write();
            if let Some(nodes) = placement.get_mut(&key) {
                if let Some(slot) = nodes.iter_mut().find(|n| **n == failed) {
                    *slot = new_node;
                }
            }
        }
        let new_server = self.server(new_node)?;
        let pages = export.pages;
        self.fabric
            .call(from, new_node, move || new_server.import_pages(key, pages))??;
        Ok(new_node)
    }

    /// The largest unconsolidated-log backlog across servers, in bytes.
    /// The SAL consults this to throttle master writes when consolidation
    /// falls behind (paper §7).
    pub fn max_backlog_pressure(&self) -> usize {
        self.servers
            .read()
            .values()
            .map(|s| s.backlog_pressure())
            .max()
            .unwrap_or(0)
    }

    /// Drives every server's consolidation and write-back once (tests and
    /// single-threaded harnesses).
    pub fn consolidate_and_flush_all(&self) {
        let servers: Vec<Arc<PageStoreServer>> = self.servers.read().values().cloned().collect();
        for s in servers {
            s.consolidate_all();
            let _ = s.flush_dirty();
        }
    }

    /// Starts one background consolidation/flush thread per server. Returns
    /// a guard; drop it (or call `stop`) to terminate the threads.
    pub fn start_background_consolidation(&self) -> ConsolidationGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for (_, server) in self.servers.read().iter() {
            let server = Arc::clone(server);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut idle_spins = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    if server.consolidate_step() {
                        idle_spins = 0;
                    } else {
                        idle_spins += 1;
                        if idle_spins.is_multiple_of(64) {
                            let _ = server.flush_dirty();
                        }
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
                let _ = server.flush_dirty();
            }));
        }
        ConsolidationGuard { stop, handles }
    }
}

/// Join guard for background consolidation threads.
pub struct ConsolidationGuard {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ConsolidationGuard {
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ConsolidationGuard {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use taurus_common::clock::ManualClock;
    use taurus_common::config::NetworkProfile;
    use taurus_common::page::PageType;
    use taurus_common::record::{LogRecord, RecordBody};
    use taurus_common::{DbId, SliceId};

    fn setup(n: usize) -> (PageStoreCluster, NodeId) {
        let clock = ManualClock::shared();
        let fabric = Fabric::new(clock, NetworkProfile::instant(), 11);
        let me = fabric.add_node(NodeKind::Compute);
        let cluster = PageStoreCluster::new(
            fabric,
            3,
            PageStoreOptions {
                log_cache_bytes: 1 << 20,
                pool_pages: 128,
                ..PageStoreOptions::default()
            },
        );
        cluster.spawn_servers(n, StorageProfile::instant());
        (cluster, me)
    }

    fn key() -> SliceKey {
        SliceKey::new(DbId(1), SliceId(0))
    }

    /// One-record fragment at `lsn`, chained after `prev`.
    fn frag(prev: u64, lsn: u64, page: u64) -> SliceFragment {
        let body = if lsn % 2 == 1 {
            RecordBody::Format {
                ty: PageType::Leaf,
                level: 0,
            }
        } else {
            RecordBody::Insert {
                idx: 0,
                key: Bytes::from(format!("k{lsn}")),
                val: Bytes::from(format!("v{lsn}")),
            }
        };
        SliceFragment::new(
            key(),
            Lsn(prev),
            vec![LogRecord::new(Lsn(lsn), PageId(page), body)],
        )
    }

    #[test]
    fn create_slice_places_three_replicas() {
        let (c, me) = setup(5);
        let nodes = c.create_slice(key(), me).unwrap();
        assert_eq!(nodes.len(), 3);
        for n in &nodes {
            assert!(c.server_handle(*n).unwrap().has_slice(key()));
        }
        // Idempotent.
        assert_eq!(c.create_slice(key(), me).unwrap(), nodes);
    }

    #[test]
    fn gossip_repairs_a_lagging_replica() {
        let (c, me) = setup(4);
        let nodes = c.create_slice(key(), me).unwrap();
        // Replicas 0 and 1 get both fragments; replica 2 misses fragment 1
        // (as if it was down during the wait-for-one write).
        for &n in &nodes {
            c.write_logs_to(n, me, &frag(0, 1, 7)).unwrap();
        }
        for &n in &nodes[..2] {
            c.write_logs_to(n, me, &frag(1, 2, 7)).unwrap();
        }
        assert_eq!(c.persistent_lsn_of(nodes[2], me, key()).unwrap(), Lsn(1));
        let moved = c.gossip(key());
        assert_eq!(moved, 1);
        assert_eq!(c.persistent_lsn_of(nodes[2], me, key()).unwrap(), Lsn(2));
    }

    #[test]
    fn gossip_skips_down_replicas_and_recovers_them_later() {
        let (c, me) = setup(4);
        let nodes = c.create_slice(key(), me).unwrap();
        for &n in &nodes {
            c.write_logs_to(n, me, &frag(0, 1, 7)).unwrap();
        }
        c.fabric.set_down(nodes[2]);
        for &n in &nodes[..2] {
            c.write_logs_to(n, me, &frag(1, 2, 7)).unwrap();
        }
        // Down replica: gossip moves nothing to it.
        assert_eq!(c.gossip(key()), 0);
        // It comes back (short-term failure) and gossip catches it up —
        // exactly the paper's Fig. 4(a) scenario.
        c.fabric.set_up(nodes[2]);
        assert_eq!(c.gossip(key()), 1);
        assert_eq!(c.persistent_lsn_of(nodes[2], me, key()).unwrap(), Lsn(2));
    }

    #[test]
    fn rebuild_replaces_failed_replica_with_full_content() {
        let (c, me) = setup(5);
        let nodes = c.create_slice(key(), me).unwrap();
        for &n in &nodes {
            c.write_logs_to(n, me, &frag(0, 1, 7)).unwrap();
            c.write_logs_to(n, me, &frag(1, 2, 7)).unwrap();
        }
        c.consolidate_and_flush_all();
        let failed = nodes[0];
        c.fabric.set_down(failed);
        c.fabric.decommission(failed);
        let new_node = c.rebuild_replica(key(), failed, me).unwrap();
        assert!(!c.replicas_of(key()).contains(&failed));
        assert!(c.replicas_of(key()).contains(&new_node));
        // The rebuilt replica serves reads at the donor's persistent LSN.
        let (page, lsn) = c
            .read_page_from(new_node, me, key(), PageId(7), Lsn(2))
            .unwrap();
        assert_eq!(lsn, Lsn(2));
        assert_eq!(page.nslots(), 1);
    }

    #[test]
    fn rebuild_fails_if_all_other_replicas_are_down() {
        let (c, me) = setup(5);
        let nodes = c.create_slice(key(), me).unwrap();
        for &n in &nodes {
            c.fabric.set_down(n);
        }
        assert!(matches!(
            c.rebuild_replica(key(), nodes[0], me),
            Err(TaurusError::AllReplicasFailed(_))
        ));
    }

    #[test]
    fn writes_during_rebuild_reach_the_new_replica() {
        let (c, me) = setup(5);
        let nodes = c.create_slice(key(), me).unwrap();
        for &n in &nodes {
            c.write_logs_to(n, me, &frag(0, 1, 7)).unwrap();
        }
        let failed = nodes[0];
        c.fabric.set_down(failed);
        c.fabric.decommission(failed);
        let new_node = c.rebuild_replica(key(), failed, me).unwrap();
        // A write arriving after the placement swap lands on the new node.
        c.write_logs_to(new_node, me, &frag(1, 2, 7)).unwrap();
        assert_eq!(c.persistent_lsn_of(new_node, me, key()).unwrap(), Lsn(2));
    }
}
