//! The slotted page format shared by every component that materializes pages.
//!
//! The paper's model is "the log is the database": the master's buffer pool,
//! read replicas, and Page Store consolidation all produce page versions by
//! replaying the same physiological log records. To guarantee they produce
//! *identical bytes*, they share this one page implementation and the
//! [`crate::apply::apply_record`] function.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0      8      9      10      12         14     22     30  32
//! | lsn  | type | level | nslots | heap_off | next | prev |pad| slots... -> ... <- cells |
//! ```
//!
//! The slot directory grows upward from the header; cells (key/value payloads)
//! grow downward from the end of the page. Each slot is `(offset: u16,
//! len: u16)`; each cell is `[klen: u16][key][value]`.

use crate::error::{Result, TaurusError};
use crate::lsn::Lsn;

/// Size of every database page in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Fixed page header size in bytes.
pub const HEADER_SIZE: usize = 32;
/// Bytes of slot-directory overhead per record.
pub const SLOT_SIZE: usize = 4;
/// Largest key+value payload a single page record may carry. Chosen so that
/// at least four records always fit on a page, which keeps B+tree splits
/// productive.
pub const MAX_CELL_PAYLOAD: usize = (PAGE_SIZE - HEADER_SIZE) / 4 - SLOT_SIZE - 2;

const OFF_LSN: usize = 0;
const OFF_TYPE: usize = 8;
const OFF_LEVEL: usize = 9;
const OFF_NSLOTS: usize = 10;
const OFF_HEAP: usize = 12;
const OFF_NEXT: usize = 14;
const OFF_PREV: usize = 22;

/// What a page is used for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageType {
    /// Unallocated / zeroed page.
    Free = 0,
    /// B+tree leaf: cells are (key, value) user records.
    Leaf = 1,
    /// B+tree internal node: cells are (separator key, child page id).
    Internal = 2,
    /// Database control page (page 0): engine metadata such as the B+tree
    /// root pointer and the page allocation high-water mark.
    Control = 3,
}

impl PageType {
    pub fn from_u8(v: u8) -> Result<PageType> {
        match v {
            0 => Ok(PageType::Free),
            1 => Ok(PageType::Leaf),
            2 => Ok(PageType::Internal),
            3 => Ok(PageType::Control),
            _ => Err(TaurusError::PageCorrupt("unknown page type")),
        }
    }
}

/// An owned, heap-allocated page image.
#[derive(Clone)]
pub struct PageBuf {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageBuf")
            .field("lsn", &self.lsn())
            .field("type", &self.page_type())
            .field("nslots", &self.nslots())
            .field("free", &self.free_space())
            .finish()
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for PageBuf {}

impl PageBuf {
    /// A zeroed (Free) page at LSN 0.
    pub fn new() -> Self {
        PageBuf {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Reconstructs a page from raw bytes (e.g. read from a storage device).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(TaurusError::PageCorrupt("wrong page image size"));
        }
        let mut p = PageBuf::new();
        p.data.copy_from_slice(bytes);
        Ok(p)
    }

    /// Raw page image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn u16_at(&self, off: usize) -> u16 {
        let mut w = [0u8; 2];
        w.copy_from_slice(&self.data[off..off + 2]);
        u16::from_le_bytes(w)
    }
    fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
    fn u64_at(&self, off: usize) -> u64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(w)
    }
    fn put_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Version of the page: LSN of the last record applied to it.
    pub fn lsn(&self) -> Lsn {
        Lsn(self.u64_at(OFF_LSN))
    }
    /// Sets the page version. Called only by [`crate::apply::apply_record`].
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.put_u64(OFF_LSN, lsn.0);
    }

    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.data[OFF_TYPE]).unwrap_or(PageType::Free)
    }

    /// B+tree level (0 = leaf). Only meaningful for Internal pages.
    pub fn level(&self) -> u8 {
        self.data[OFF_LEVEL]
    }

    /// Sibling link (leaf chain / overflow), 0 = none.
    pub fn next(&self) -> u64 {
        self.u64_at(OFF_NEXT)
    }
    pub fn prev(&self) -> u64 {
        self.u64_at(OFF_PREV)
    }
    pub fn set_links(&mut self, next: u64, prev: u64) {
        self.put_u64(OFF_NEXT, next);
        self.put_u64(OFF_PREV, prev);
    }

    /// Number of records on the page.
    pub fn nslots(&self) -> usize {
        self.u16_at(OFF_NSLOTS) as usize
    }
    fn set_nslots(&mut self, n: usize) {
        self.put_u16(OFF_NSLOTS, n as u16);
    }

    /// Offset of the lowest cell byte (data region is `heap_off..PAGE_SIZE`).
    fn heap_off(&self) -> usize {
        let v = self.u16_at(OFF_HEAP) as usize;
        if v == 0 {
            PAGE_SIZE
        } else {
            v
        }
    }
    fn set_heap_off(&mut self, off: usize) {
        debug_assert!(off <= PAGE_SIZE);
        self.put_u16(OFF_HEAP, if off == PAGE_SIZE { 0 } else { off as u16 });
    }

    /// (Re)formats the page as an empty page of the given type, clearing all
    /// records. Preserves nothing but the supplied metadata; the LSN is reset
    /// to ZERO (the applying record will set it).
    pub fn format(&mut self, ty: PageType, level: u8) {
        self.data.fill(0);
        self.data[OFF_TYPE] = ty as u8;
        self.data[OFF_LEVEL] = level;
        self.set_heap_off(PAGE_SIZE);
    }

    fn slot(&self, idx: usize) -> (usize, usize) {
        let base = HEADER_SIZE + idx * SLOT_SIZE;
        (self.u16_at(base) as usize, self.u16_at(base + 2) as usize)
    }
    fn set_slot(&mut self, idx: usize, off: usize, len: usize) {
        let base = HEADER_SIZE + idx * SLOT_SIZE;
        self.put_u16(base, off as u16);
        self.put_u16(base + 2, len as u16);
    }

    /// Contiguous free bytes between the slot directory and the cell heap.
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + self.nslots() * SLOT_SIZE;
        self.heap_off().saturating_sub(dir_end)
    }

    /// Total free bytes that a compaction could reclaim (contiguous +
    /// fragmented holes left by removals/updates).
    pub fn usable_space(&self) -> usize {
        let live: usize = (0..self.nslots()).map(|i| self.slot(i).1).sum();
        PAGE_SIZE - HEADER_SIZE - self.nslots() * SLOT_SIZE - live
    }

    /// The key of record `idx`.
    pub fn key(&self, idx: usize) -> Result<&[u8]> {
        let (off, len) = self.checked_slot(idx)?;
        let klen = self.u16_at(off) as usize;
        if 2 + klen > len {
            return Err(TaurusError::PageCorrupt("cell key overruns cell"));
        }
        Ok(&self.data[off + 2..off + 2 + klen])
    }

    /// The value of record `idx`.
    pub fn value(&self, idx: usize) -> Result<&[u8]> {
        let (off, len) = self.checked_slot(idx)?;
        let klen = self.u16_at(off) as usize;
        if 2 + klen > len {
            return Err(TaurusError::PageCorrupt("cell key overruns cell"));
        }
        Ok(&self.data[off + 2 + klen..off + len])
    }

    fn checked_slot(&self, idx: usize) -> Result<(usize, usize)> {
        if idx >= self.nslots() {
            return Err(TaurusError::PageCorrupt("slot index out of range"));
        }
        let (off, len) = self.slot(idx);
        if off < HEADER_SIZE || off + len > PAGE_SIZE || len < 2 {
            return Err(TaurusError::PageCorrupt("slot points outside page"));
        }
        Ok((off, len))
    }

    /// Binary-searches for `key`. `Ok(idx)` if present; `Err(idx)` gives the
    /// insertion point that keeps the page sorted.
    pub fn search(&self, key: &[u8]) -> std::result::Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.nslots();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).map(|k| k.cmp(key)) {
                Ok(std::cmp::Ordering::Less) => lo = mid + 1,
                Ok(std::cmp::Ordering::Greater) => hi = mid,
                Ok(std::cmp::Ordering::Equal) => return Ok(mid),
                Err(_) => return Err(lo), // corrupt page: treated as absent
            }
        }
        Err(lo)
    }

    /// Inserts a record at slot `idx`, shifting later slots right. Fails with
    /// `PageCorrupt` if the payload cannot fit even after compaction (callers
    /// split first).
    pub fn insert(&mut self, idx: usize, key: &[u8], val: &[u8]) -> Result<()> {
        let n = self.nslots();
        if idx > n {
            return Err(TaurusError::PageCorrupt("insert index out of range"));
        }
        let cell_len = 2 + key.len() + val.len();
        if key.len() + val.len() > MAX_CELL_PAYLOAD {
            return Err(TaurusError::PageCorrupt("cell exceeds MAX_CELL_PAYLOAD"));
        }
        let need = cell_len + SLOT_SIZE;
        if self.free_space() < need {
            if self.usable_space() < need {
                return Err(TaurusError::PageCorrupt("page full"));
            }
            self.compact();
        }
        // Write the cell at the new heap frontier.
        let off = self.heap_off() - cell_len;
        self.put_u16(off, key.len() as u16);
        self.data[off + 2..off + 2 + key.len()].copy_from_slice(key);
        self.data[off + 2 + key.len()..off + cell_len].copy_from_slice(val);
        self.set_heap_off(off);
        // Shift the slot directory.
        let dir_start = HEADER_SIZE + idx * SLOT_SIZE;
        let dir_end = HEADER_SIZE + n * SLOT_SIZE;
        self.data
            .copy_within(dir_start..dir_end, dir_start + SLOT_SIZE);
        self.set_slot(idx, off, cell_len);
        self.set_nslots(n + 1);
        Ok(())
    }

    /// Removes the record at slot `idx`, shifting later slots left. The cell
    /// bytes become a reclaimable hole.
    pub fn remove(&mut self, idx: usize) -> Result<()> {
        let n = self.nslots();
        if idx >= n {
            return Err(TaurusError::PageCorrupt("remove index out of range"));
        }
        let dir_start = HEADER_SIZE + (idx + 1) * SLOT_SIZE;
        let dir_end = HEADER_SIZE + n * SLOT_SIZE;
        self.data
            .copy_within(dir_start..dir_end, dir_start - SLOT_SIZE);
        self.set_nslots(n - 1);
        Ok(())
    }

    /// Replaces the value of the record at `idx`, keeping its key.
    pub fn update_value(&mut self, idx: usize, val: &[u8]) -> Result<()> {
        let key = self.key(idx)?.to_vec();
        self.remove(idx)?;
        self.insert(idx, &key, val)
    }

    /// Drops all records from slot `idx` onward (used when replaying the
    /// left half of a page split).
    pub fn truncate_from(&mut self, idx: usize) -> Result<()> {
        if idx > self.nslots() {
            return Err(TaurusError::PageCorrupt("truncate index out of range"));
        }
        self.set_nslots(idx);
        Ok(())
    }

    /// Rewrites the cell heap to squeeze out holes. Slot order and contents
    /// are unchanged.
    pub fn compact(&mut self) {
        let n = self.nslots();
        let mut scratch = Vec::with_capacity(n);
        for i in 0..n {
            let (off, len) = self.slot(i);
            scratch.push(self.data[off..off + len].to_vec());
        }
        let mut frontier = PAGE_SIZE;
        for (i, cell) in scratch.iter().enumerate() {
            frontier -= cell.len();
            self.data[frontier..frontier + cell.len()].copy_from_slice(cell);
            self.set_slot(i, frontier, cell.len());
        }
        self.set_heap_off(frontier);
    }

    /// All records on the page as owned (key, value) pairs, in slot order.
    pub fn records(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..self.nslots())
            .map(|i| {
                (
                    self.key(i).unwrap_or(&[]).to_vec(),
                    self.value(i).unwrap_or(&[]).to_vec(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> PageBuf {
        let mut p = PageBuf::new();
        p.format(PageType::Leaf, 0);
        p
    }

    #[test]
    fn fresh_page_is_empty() {
        let p = leaf();
        assert_eq!(p.nslots(), 0);
        assert_eq!(p.page_type(), PageType::Leaf);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
        assert_eq!(p.lsn(), Lsn::ZERO);
    }

    #[test]
    fn insert_and_read_back_in_order() {
        let mut p = leaf();
        p.insert(0, b"b", b"2").unwrap();
        p.insert(0, b"a", b"1").unwrap();
        p.insert(2, b"c", b"3").unwrap();
        assert_eq!(p.nslots(), 3);
        assert_eq!(p.key(0).unwrap(), b"a");
        assert_eq!(p.value(0).unwrap(), b"1");
        assert_eq!(p.key(1).unwrap(), b"b");
        assert_eq!(p.key(2).unwrap(), b"c");
    }

    #[test]
    fn search_finds_keys_and_insertion_points() {
        let mut p = leaf();
        for (i, k) in [b"b", b"d", b"f"].iter().enumerate() {
            p.insert(i, *k, b"v").unwrap();
        }
        assert_eq!(p.search(b"b"), Ok(0));
        assert_eq!(p.search(b"d"), Ok(1));
        assert_eq!(p.search(b"a"), Err(0));
        assert_eq!(p.search(b"c"), Err(1));
        assert_eq!(p.search(b"z"), Err(3));
    }

    #[test]
    fn remove_shifts_slots() {
        let mut p = leaf();
        for (i, k) in [b"a", b"b", b"c"].iter().enumerate() {
            p.insert(i, *k, b"v").unwrap();
        }
        p.remove(1).unwrap();
        assert_eq!(p.nslots(), 2);
        assert_eq!(p.key(0).unwrap(), b"a");
        assert_eq!(p.key(1).unwrap(), b"c");
    }

    #[test]
    fn update_value_in_place_and_grow() {
        let mut p = leaf();
        p.insert(0, b"k", b"small").unwrap();
        p.update_value(0, b"a much longer value than before")
            .unwrap();
        assert_eq!(p.value(0).unwrap(), b"a much longer value than before");
        assert_eq!(p.key(0).unwrap(), b"k");
        assert_eq!(p.nslots(), 1);
    }

    #[test]
    fn page_fills_then_rejects_then_compaction_reclaims() {
        let mut p = leaf();
        let val = vec![0xabu8; 100];
        let mut n = 0usize;
        loop {
            let key = format!("key{n:06}");
            match p.insert(n, key.as_bytes(), &val) {
                Ok(()) => n += 1,
                Err(_) => break,
            }
        }
        assert!(n > 50, "expected dozens of records, got {n}");
        // Remove half, making holes; inserts must succeed again via compaction.
        for i in (0..n).rev().step_by(2) {
            p.remove(i).unwrap();
        }
        let before = p.nslots();
        p.insert(0, b"aaa", &val).unwrap();
        assert_eq!(p.nslots(), before + 1);
    }

    #[test]
    fn truncate_from_drops_suffix() {
        let mut p = leaf();
        for i in 0..10 {
            let k = format!("k{i:02}");
            p.insert(i, k.as_bytes(), b"v").unwrap();
        }
        p.truncate_from(4).unwrap();
        assert_eq!(p.nslots(), 4);
        assert_eq!(p.key(3).unwrap(), b"k03");
    }

    #[test]
    fn links_roundtrip() {
        let mut p = leaf();
        p.set_links(77, 33);
        assert_eq!(p.next(), 77);
        assert_eq!(p.prev(), 33);
    }

    #[test]
    fn bytes_roundtrip_is_lossless() {
        let mut p = leaf();
        p.insert(0, b"k", b"v").unwrap();
        p.set_lsn(Lsn(99));
        let q = PageBuf::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.lsn(), Lsn(99));
    }

    #[test]
    fn oversized_cell_is_rejected() {
        let mut p = leaf();
        let huge = vec![0u8; MAX_CELL_PAYLOAD + 1];
        assert!(p.insert(0, b"k", &huge).is_err());
    }

    #[test]
    fn out_of_range_accesses_error_cleanly() {
        let mut p = leaf();
        assert!(p.key(0).is_err());
        assert!(p.remove(0).is_err());
        assert!(p.insert(1, b"k", b"v").is_err());
        assert!(p.truncate_from(1).is_err());
    }
}
