//! The load-aware slice rebalancer (DESIGN.md §14).
//!
//! The SAL watches per-slice heat counters on the Page Stores (read/write
//! ops and bytes, summed across replicas) and reshapes placement in the
//! background:
//!
//! * a slice that dominates the workload (its share of the inter-round heat
//!   delta exceeds `rebalance_hot_slice_ratio`) and is still wide enough is
//!   **split** at its range midpoint, halving the hot key range per node;
//! * otherwise, when per-node load is skewed (max/mean ops exceed
//!   `rebalance_spread_ratio`), one replica of the hottest slice on the
//!   hottest node is **moved** to the coldest node;
//! * two adjacent cold dynamic slices are **merged** back together when
//!   both are nearly idle, bounding slice-count growth under shifting
//!   hotspots.
//!
//! At most one placement operation runs per round — cut-overs are cheap but
//! not free, and the heat deltas after an operation are stale by
//! construction. Decisions are pure functions of the counters (no RNG), so
//! runs are deterministic for a deterministic workload.

use std::collections::HashMap;
use std::sync::Arc;

use taurus_common::{NodeId, Result, SliceKey};
use taurus_pagestore::SliceHeatSnapshot;

use crate::elastic;
use crate::sal::Sal;

/// What one rebalance round decided and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    pub splits: usize,
    pub moves: usize,
    pub merges: usize,
    /// max/mean per-node ops over the round's heat delta, ×100 (a spread of
    /// 1.0 — perfectly even — reports 100). 0 when no node saw traffic.
    pub node_spread_pct: u64,
    /// Human-readable description of the action taken, if any.
    pub action: Option<String>,
}

/// Background placement optimizer for one database. Owns the inter-round
/// heat baseline; drive it periodically via [`Rebalancer::run_once`].
pub struct Rebalancer {
    sal: Arc<Sal>,
    /// Heat totals at the end of the previous round, per slice.
    last_slice: HashMap<SliceKey, SliceHeatSnapshot>,
    /// Heat totals at the end of the previous round, per node.
    last_node: HashMap<NodeId, SliceHeatSnapshot>,
}

impl Rebalancer {
    pub fn new(sal: Arc<Sal>) -> Self {
        Rebalancer {
            sal,
            last_slice: HashMap::new(),
            last_node: HashMap::new(),
        }
    }

    /// Runs one rebalance round: compute heat deltas since the previous
    /// round, pick at most one action (split > move > merge), execute it.
    pub fn run_once(&mut self) -> Result<RebalanceReport> {
        let cfg = &self.sal.cfg;
        let mut report = RebalanceReport::default();

        // Inter-round deltas. Counters are cumulative, so a slice that was
        // dropped (GC'd retired parent) simply disappears from the map.
        let slice_now = self.sal.slice_heat();
        let node_now = self.sal.node_heat();
        let slice_delta: Vec<(SliceKey, u64)> = slice_now
            .iter()
            .map(|(k, h)| {
                let prev = self.last_slice.get(k).map(|p| p.ops()).unwrap_or(0);
                (*k, h.ops().saturating_sub(prev))
            })
            .collect();
        let node_delta: Vec<(NodeId, u64)> = node_now
            .iter()
            .map(|(n, h)| {
                let prev = self.last_node.get(n).map(|p| p.ops()).unwrap_or(0);
                (*n, h.ops().saturating_sub(prev))
            })
            .collect();
        self.last_slice = slice_now.into_iter().collect();
        self.last_node = node_now.into_iter().collect();

        let total: u64 = slice_delta.iter().map(|(_, d)| d).sum();
        if let Some(max) = node_delta.iter().map(|(_, d)| *d).max() {
            let sum: u64 = node_delta.iter().map(|(_, d)| d).sum();
            if sum > 0 {
                let mean = sum as f64 / node_delta.len() as f64;
                report.node_spread_pct = (max as f64 / mean * 100.0) as u64;
            }
        }
        if total < cfg.rebalance_min_ops {
            return Ok(report); // Too quiet to trust the signal.
        }

        // Hottest slice first (ties by key for determinism).
        let mut hot = slice_delta.clone();
        hot.sort_by_key(|(k, d)| (std::cmp::Reverse(*d), *k));

        // 1. Split a dominating slice that is still wide enough.
        if let Some(&(key, d)) = hot.first() {
            let share = d as f64 / total as f64;
            if share >= cfg.rebalance_hot_slice_ratio {
                if let Some((start, end)) = self.sal.pages.slice_range(key, cfg.pages_per_slice) {
                    if end - start > cfg.rebalance_min_slice_pages {
                        let mid = start + (end - start) / 2;
                        let r = elastic::split_slice(&self.sal, key, mid)?;
                        report.splits = 1;
                        report.action = Some(format!(
                            "split {key} at page {mid} (share {:.0}%) -> {} + {}",
                            share * 100.0,
                            r.created[0],
                            r.created[1]
                        ));
                        return Ok(report);
                    }
                }
            }
        }

        // 2. Node imbalance: move one replica of the hottest slice hosted
        // by the hottest node to the coldest node not already holding one.
        let mut nodes = node_delta.clone();
        nodes.sort_by_key(|(n, d)| (std::cmp::Reverse(*d), *n));
        if let (Some(&(hot_node, max)), Some(_)) = (nodes.first(), nodes.last()) {
            let sum: u64 = nodes.iter().map(|(_, d)| d).sum();
            let mean = sum as f64 / nodes.len() as f64;
            if mean > 0.0 && max as f64 / mean >= cfg.rebalance_spread_ratio {
                for &(key, _) in &hot {
                    let replicas = self.sal.pages.replicas_of(key);
                    if !replicas.contains(&hot_node) || self.sal.pages.is_retired(key) {
                        continue;
                    }
                    // Coldest node (reverse order) that has no replica yet.
                    let Some(&(cold_node, _)) = nodes
                        .iter()
                        .rev()
                        .find(|(n, _)| *n != hot_node && !replicas.contains(n))
                    else {
                        continue;
                    };
                    let r = elastic::move_slice_replica(&self.sal, key, hot_node, cold_node)?;
                    report.moves = 1;
                    report.action = Some(format!(
                        "move {key} replica {hot_node} -> {cold_node} (spread {}%) epoch {}",
                        report.node_spread_pct, r.epoch
                    ));
                    return Ok(report);
                }
            }
        }

        // 3. Fold a pair of adjacent, idle dynamic slices back together.
        let idle_cap = cfg.rebalance_min_ops / 8;
        let delta_of: HashMap<SliceKey, u64> = slice_delta.iter().copied().collect();
        let mut ranged: Vec<(u64, u64, SliceKey)> = self
            .sal
            .pages
            .slices()
            .into_iter()
            .filter(|k| k.db == self.sal.db && k.slice.0 >= taurus_pagestore::DYNAMIC_SLICE_BASE)
            .filter_map(|k| {
                self.sal
                    .pages
                    .slice_range(k, cfg.pages_per_slice)
                    .map(|(s, e)| (s, e, k))
            })
            .collect();
        ranged.sort();
        for w in ranged.windows(2) {
            let (_, le, lk) = w[0];
            let (rs, _, rk) = w[1];
            if le == rs
                && delta_of.get(&lk).copied().unwrap_or(0) <= idle_cap
                && delta_of.get(&rk).copied().unwrap_or(0) <= idle_cap
            {
                let r = elastic::merge_slices(&self.sal, lk, rk)?;
                report.merges = 1;
                report.action = Some(format!("merge {lk} + {rk} -> {}", r.created[0]));
                return Ok(report);
            }
        }

        Ok(report)
    }
}
