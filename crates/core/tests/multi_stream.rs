//! Integration tests for multi-stream parallel group commit: span ordering
//! across streams, the LSN-vector durability rule, crash recovery with a
//! log hole in one stream, and the `PendingFlush` drop-path error
//! accounting.

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use bytes::Bytes;
use taurus_common::clock::ManualClock;
use taurus_common::config::{NetworkProfile, StorageProfile};
use taurus_common::lsn::{LsnAllocator, LsnWatermark};
use taurus_common::metrics::LogStoreStats;
use taurus_common::page::PageType;
use taurus_common::record::{LogRecord, LogRecordGroup, RecordBody};
use taurus_common::{invariants, DbId, Lsn, NodeId, PageId, TaurusConfig};
use taurus_core::Sal;
use taurus_fabric::{Fabric, NodeKind};
use taurus_logstore::{encode_batch, LogStoreCluster, LogStream};
use taurus_pagestore::cluster::PageStoreOptions;
use taurus_pagestore::PageStoreCluster;

struct Harness {
    fabric: Fabric,
    logs: LogStoreCluster,
    pages: PageStoreCluster,
    anchor: Arc<LsnWatermark>,
    me: NodeId,
    cfg: TaurusConfig,
    lsns: LsnAllocator,
}

impl Harness {
    fn new(log_nodes: usize, page_nodes: usize, streams: usize) -> Harness {
        let clock = ManualClock::shared();
        let fabric = Fabric::new(clock.clone(), NetworkProfile::instant(), 777);
        let me = fabric.add_node(NodeKind::Compute);
        let cfg = TaurusConfig {
            log_buffer_bytes: 1, // flush on every group: deterministic spans
            slice_buffer_bytes: 1,
            log_streams: streams,
            ..TaurusConfig::test()
        };
        let logs = LogStoreCluster::new(fabric.clone(), cfg.log_replicas, cfg.logstore_cache_bytes);
        logs.spawn_servers(log_nodes, StorageProfile::instant());
        let pages = PageStoreCluster::new(
            fabric.clone(),
            cfg.page_replicas,
            PageStoreOptions::default(),
        );
        pages.spawn_servers(page_nodes, StorageProfile::instant());
        Harness {
            fabric,
            logs,
            pages,
            anchor: Arc::new(LsnWatermark::new(Lsn::ZERO)),
            me,
            cfg,
            lsns: LsnAllocator::new(Lsn::ZERO),
        }
    }

    fn sal(&self) -> Arc<Sal> {
        Sal::create(
            self.cfg.clone(),
            DbId(1),
            self.me,
            self.logs.clone(),
            self.pages.clone(),
            Arc::clone(&self.anchor),
        )
        .unwrap()
    }

    fn recover(&self) -> (Arc<Sal>, Lsn) {
        Sal::recover(
            self.cfg.clone(),
            DbId(1),
            self.me,
            self.logs.clone(),
            self.pages.clone(),
            Arc::clone(&self.anchor),
        )
        .unwrap()
    }

    fn group(&self, page: u64, k: &str, format: bool) -> LogRecordGroup {
        let mut records = Vec::new();
        if format {
            records.push(LogRecord::new(
                self.lsns.alloc(),
                PageId(page),
                RecordBody::Format {
                    ty: PageType::Leaf,
                    level: 0,
                },
            ));
        }
        records.push(LogRecord::new(
            self.lsns.alloc(),
            PageId(page),
            RecordBody::Insert {
                idx: 0,
                key: Bytes::copy_from_slice(k.as_bytes()),
                val: Bytes::from_static(b"v"),
            },
        ));
        LogRecordGroup::new(DbId(1), records)
    }

    fn write_kv(&self, sal: &Sal, page: u64, k: &str, format: bool) -> Lsn {
        let group = self.group(page, k, format);
        let end = group.end_lsn();
        sal.log_group(group).unwrap();
        sal.flush().unwrap();
        end
    }

    fn settle(&self, sal: &Sal) {
        sal.flush_all_slices();
        for _ in 0..300 {
            std::thread::sleep(std::time::Duration::from_micros(200));
            if sal.cv_lsn() == sal.durable_lsn() {
                break;
            }
        }
    }
}

/// Sequential flushes land round-robin on every stream; `durable_lsn` is
/// only ever the end of the contiguous span prefix, and the per-stream
/// LSN-vector covers it (no stream's watermark is behind a span the global
/// durable LSN already passed).
#[test]
fn spans_round_robin_across_streams_and_lsn_vector_covers_durable() {
    let h = Harness::new(5, 4, 3);
    let sal = h.sal();
    let mut end = Lsn::ZERO;
    for i in 0..6 {
        end = h.write_kv(&sal, 1, &format!("k{i}"), i == 0);
        assert_eq!(sal.durable_lsn(), end, "flush {i} must ack durably");
    }
    let vec = sal.durable_vector();
    assert_eq!(vec.len(), 3, "one watermark per stream");
    // Six spans over three streams: every stream carried two, so every
    // watermark is a real span end, and their max is the global durable LSN.
    assert!(vec.iter().all(|l| l.is_valid() && *l > Lsn::ZERO));
    assert_eq!(vec.iter().copied().max().unwrap(), sal.durable_lsn());
    // Merge-on-read across the streams reassembles the full LSN sequence.
    let groups = sal.read_log_from(Lsn::ZERO).unwrap();
    let ends: Vec<Lsn> = groups.iter().map(|g| g.end_lsn()).collect();
    let mut sorted = ends.clone();
    sorted.sort();
    assert_eq!(
        ends, sorted,
        "read_log_from must merge streams in LSN order"
    );
    assert_eq!(*ends.last().unwrap(), end);
    h.settle(&sal);
    let page = sal.read_page(PageId(1), None).unwrap();
    assert_eq!(page.nslots(), 6);
}

/// Crash mid-flush with stream 1 durably ahead of stream 0: a span is on
/// stream 1 whose predecessor (assigned to stream 0) never landed. The
/// chain walk must stop at the hole, physically discard the orphan frame
/// (it was never acknowledged to any client), and converge to the same
/// state as a clean run — twice, since recovery must be idempotent.
#[test]
fn log_hole_in_one_stream_is_discarded_on_recovery() {
    let h = Harness::new(5, 4, 2);
    let sal = h.sal();
    let mut end = Lsn::ZERO;
    for i in 0..4 {
        end = h.write_kv(&sal, 1, &format!("k{i}"), i == 0);
    }
    h.settle(&sal);
    assert_eq!(sal.durable_lsn(), end);
    // CRASH: drop the SAL with everything acknowledged through `end`.
    drop(sal);

    // Simulate the torn flush: the next two spans were prepared, and the
    // *later* one (round-robined to stream 1) completed its 3/3 append
    // while the earlier one (stream 0) never did. Write the orphan frame
    // directly to stream 1, chained behind the span that does not exist.
    let missing = h.lsns.alloc(); // would-be stream-0 span, lost in the crash
    let orphan = h.lsns.alloc();
    let rec = LogRecord::new(
        orphan,
        PageId(1),
        RecordBody::Insert {
            idx: 0,
            key: Bytes::from_static(b"orphan"),
            val: Bytes::from_static(b"v"),
        },
    );
    let g = LogRecordGroup::new(DbId(1), vec![rec]);
    let frame = encode_batch(&[g], missing, orphan, orphan);
    let stream1 = LogStream::open_stream(
        h.logs.clone(),
        DbId(1),
        h.me,
        h.cfg.plog_size_limit,
        h.cfg.log_append_window,
        1,
        true,
        Arc::new(LogStoreStats::default()),
    )
    .unwrap();
    let res = stream1
        .reserve_append(orphan, orphan, frame.len() as u64)
        .unwrap();
    stream1.complete_append(res, frame).unwrap();
    assert!(
        stream1
            .read_frames_from(Lsn::ZERO)
            .unwrap()
            .iter()
            .any(|f| f.first == orphan),
        "orphan frame must be on stream 1 before recovery"
    );
    drop(stream1);

    // Recovery merges both streams, walks the prev_end chain, finds the
    // hole at `missing`, and cuts there.
    let (sal2, max_lsn) = h.recover();
    assert_eq!(max_lsn, end, "replay must stop at the hole");
    assert_eq!(sal2.durable_lsn(), end);
    let vec = sal2.durable_vector();
    assert!(vec.iter().all(|l| *l == end), "vector reseeded to the cut");
    let groups = sal2.read_log_from(Lsn::ZERO).unwrap();
    assert!(
        groups.iter().all(|g| g.end_lsn() <= end),
        "orphan records must not be readable after recovery"
    );
    let page = sal2.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 4, "clean-run state: k0..k3, no orphan");
    assert!((0..page.nslots()).all(|i| page.key(i).unwrap() != b"orphan"));
    drop(sal2);

    // The discard was physical: a fresh handle on stream 1 no longer sees
    // the frame, so a second recovery converges to the identical state.
    let stream1 = LogStream::open_stream(
        h.logs.clone(),
        DbId(1),
        h.me,
        h.cfg.plog_size_limit,
        h.cfg.log_append_window,
        1,
        true,
        Arc::new(LogStoreStats::default()),
    )
    .unwrap();
    assert!(
        stream1
            .read_frames_from(Lsn::ZERO)
            .unwrap()
            .iter()
            .all(|f| f.first != orphan),
        "orphan frame must be truncated from the PLog itself"
    );
    drop(stream1);
    let (sal3, max_lsn2) = h.recover();
    assert_eq!(max_lsn2, end, "recovery must be idempotent");
    let page = sal3.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 4);
}

/// A `PendingFlush` dropped while the Log Stores are unreachable cannot
/// return its error to anyone — the drop path must count it and trip the
/// `pending-flush-dropped-error` invariant instead of swallowing it.
#[test]
fn dropped_pending_flush_error_is_counted_not_swallowed() {
    let h = Harness::new(3, 3, 2);
    let sal = h.sal();
    h.write_kv(&sal, 1, "k0", true);
    assert_eq!(sal.stats.dropped_flush_errors.get(), 0);
    invariants::take_violations(); // drain anything earlier tests left

    for node in h.fabric.healthy_nodes(NodeKind::LogStore) {
        h.fabric.set_down(node);
    }
    let pending = sal.buffer_group(h.group(1, "k1", false));
    assert!(
        pending.is_some(),
        "log_buffer_bytes=1 crosses the threshold"
    );
    // With TAURUS_INVARIANT_PANIC set the invariant panics inside drop;
    // without it, the violation lands in the registry. Accept both.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(pending)));
    assert_eq!(
        sal.stats.dropped_flush_errors.get(),
        1,
        "drop-path flush failure must be counted"
    );
    if std::env::var_os("TAURUS_INVARIANT_PANIC").is_none() {
        let violations = invariants::take_violations();
        assert!(
            violations
                .iter()
                .any(|v| v.name == "pending-flush-dropped-error"),
            "violation must be registered, got {violations:?}"
        );
    }
}
