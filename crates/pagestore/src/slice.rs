//! Per-slice replica state: the fragment ledger, persistent LSN, and
//! hole tracking.
//!
//! "For each of its slices, a Page Store tracks a slice persistent LSN,
//! which is the LSN up to which the Page Store has received all log records
//! for the slice" (paper §4.3). Fragments carry a *chain link*
//! (`prev_last_lsn`); the persistent LSN is the end of the longest unbroken
//! chain of received fragments. Fragments whose link does not connect are
//! *pending*: the gaps before them are holes that gossip or the SAL must
//! repair (§5.2).

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use taurus_common::{Lsn, SliceKey};

use crate::directory::{DiskLoc, LogDirectory};
use crate::layers::LayerStore;

/// Bookkeeping for one received fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragMeta {
    pub loc: DiskLoc,
    pub prev_last_lsn: Lsn,
    pub first_lsn: Lsn,
    pub last_lsn: Lsn,
    pub consolidated: bool,
}

/// Outcome of offering a fragment to a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// New fragment, stored under the returned local id.
    Accepted(u64),
    /// Entirely covered by what the replica already has; dropped.
    Duplicate,
}

/// State of one slice replica hosted by a Page Store server.
#[derive(Debug)]
pub struct SliceReplica {
    pub key: SliceKey,
    /// Received fragments by replica-local id (ingest order).
    pub frags: BTreeMap<u64, FragMeta>,
    next_local_id: u64,
    /// Last LSN of the unbroken fragment chain.
    persistent_lsn: Lsn,
    /// Oldest LSN the front end may still request (§3.4 SetRecycleLSN).
    recycle_lsn: Lsn,
    /// The Log Directory for this slice. Shared (`Arc`) so readers and
    /// consolidation can use it without holding the replica mutex — the
    /// directory has its own internal sharded locking.
    pub directory: Arc<LogDirectory>,
    /// Layer bookkeeping for log-structured consolidation. Shared (`Arc`)
    /// like the directory so the compactor and the record-fetch path use it
    /// without holding the replica mutex.
    pub layers: Arc<LayerStore>,
    /// A rebuilding replica accepts writes but cannot serve reads until the
    /// latest pages have been copied from a healthy peer (§5.2).
    pub rebuilding: bool,
    /// Elastic cut-over fence (DESIGN.md §14): once set, this replica owns
    /// only versions `<= fence` — writes ending above it and reads as of
    /// LSNs above it are refused, because they belong to the successor
    /// placement. `None` = active.
    pub fence_lsn: Option<Lsn>,
    /// Placement epoch this replica last heard (via cut-over RPC or gossip).
    /// Purely informational — authority lives in the cluster placement map.
    pub placement_epoch: u64,
}

impl SliceReplica {
    pub fn new(key: SliceKey) -> Self {
        SliceReplica {
            key,
            frags: BTreeMap::new(),
            next_local_id: 0,
            persistent_lsn: Lsn::ZERO,
            recycle_lsn: Lsn::ZERO,
            directory: Arc::new(LogDirectory::new()),
            layers: Arc::new(LayerStore::new()),
            rebuilding: false,
            fence_lsn: None,
            placement_epoch: 0,
        }
    }

    /// Creates a replacement replica that starts life at a donor's horizon:
    /// everything at or below `persistent_lsn` is considered consolidated
    /// into the pages being copied. The persistent LSN restarts at the
    /// donor's value — which is how a persistent-LSN *decrease* becomes
    /// visible to the SAL when the donor itself was missing records
    /// (paper Fig. 4(b)).
    pub fn new_rebuilding(key: SliceKey, persistent_lsn: Lsn, recycle_lsn: Lsn) -> Self {
        SliceReplica {
            key,
            frags: BTreeMap::new(),
            next_local_id: 0,
            persistent_lsn,
            recycle_lsn,
            directory: Arc::new(LogDirectory::new()),
            layers: Arc::new(LayerStore::new()),
            rebuilding: true,
            fence_lsn: None,
            placement_epoch: 0,
        }
    }

    /// Applies an elastic cut-over fence (idempotent; fences only tighten).
    /// Returns whether anything changed — the gossip epoch-push counter.
    pub fn apply_fence(&mut self, fence: Lsn, epoch: u64) -> bool {
        let tighter = match self.fence_lsn {
            Some(f) => fence < f,
            None => true,
        };
        let newer = epoch > self.placement_epoch;
        if tighter {
            self.fence_lsn = Some(fence);
        }
        if newer {
            self.placement_epoch = epoch;
        }
        tighter || newer
    }

    /// Whether a fragment with these bounds is already stored.
    pub fn has_equivalent(&self, first: Lsn, last: Lsn) -> bool {
        self.frags
            .values()
            .any(|m| m.first_lsn == first && m.last_lsn == last)
    }

    /// Records the arrival of a fragment. Advances the persistent LSN along
    /// any newly unbroken chain.
    pub fn ingest(&mut self, meta: FragMeta) -> IngestOutcome {
        if meta.last_lsn <= self.persistent_lsn {
            return IngestOutcome::Duplicate;
        }
        if self.has_equivalent(meta.first_lsn, meta.last_lsn) {
            return IngestOutcome::Duplicate;
        }
        let id = self.next_local_id;
        self.next_local_id += 1;
        self.frags.insert(id, meta);
        self.extend_chain();
        IngestOutcome::Accepted(id)
    }

    /// Advances the persistent LSN across every fragment whose chain link
    /// now connects. Overlapping fragments (from recovery resends) connect
    /// whenever their link is at or below the current persistent LSN.
    fn extend_chain(&mut self) {
        loop {
            let ext = self
                .frags
                .values()
                .filter(|m| {
                    m.prev_last_lsn <= self.persistent_lsn && m.last_lsn > self.persistent_lsn
                })
                .map(|m| m.last_lsn)
                .max();
            match ext {
                Some(lsn) => self.persistent_lsn = lsn,
                None => break,
            }
        }
    }

    pub fn persistent_lsn(&self) -> Lsn {
        self.persistent_lsn
    }

    pub fn recycle_lsn(&self) -> Lsn {
        self.recycle_lsn
    }

    pub fn advance_recycle_lsn(&mut self, lsn: Lsn) {
        self.recycle_lsn = self.recycle_lsn.max(lsn);
    }

    /// Fragment inventory for gossip: `(first, last, prev)` triples of every
    /// stored fragment.
    pub fn inventory(&self) -> Vec<(Lsn, Lsn, Lsn)> {
        let mut v: Vec<(Lsn, Lsn, Lsn)> = self
            .frags
            .values()
            .map(|m| (m.first_lsn, m.last_lsn, m.prev_last_lsn))
            .collect();
        v.sort();
        v
    }

    /// Local id of a stored fragment by its bounds (gossip supply lookup).
    pub fn find_fragment(&self, first: Lsn, last: Lsn) -> Option<u64> {
        self.frags
            .iter()
            .find(|(_, m)| m.first_lsn == first && m.last_lsn == last)
            .map(|(id, _)| *id)
    }

    /// Fragments whose chain link has not connected (they sit beyond holes).
    pub fn pending_frags(&self) -> Vec<FragMeta> {
        let mut v: Vec<FragMeta> = self
            .frags
            .values()
            .filter(|m| m.last_lsn > self.persistent_lsn)
            .copied()
            .collect();
        v.sort_by_key(|m| m.first_lsn);
        v
    }

    /// LSN ranges not yet received, as `(after, before)` exclusive bounds:
    /// the records the replica is missing are those with
    /// `after < lsn < before`. This answers the SAL's "which LSN ranges are
    /// you missing?" query (paper §5.2, the Fig. 4(c) scenario).
    pub fn missing_lsn_ranges(&self) -> Vec<(Lsn, Lsn)> {
        let mut ranges = Vec::new();
        let mut covered_to = self.persistent_lsn;
        for m in self.pending_frags() {
            if m.prev_last_lsn > covered_to {
                ranges.push((covered_to, m.first_lsn));
            }
            covered_to = covered_to.max(m.last_lsn);
        }
        ranges
    }

    /// Marks a fragment consolidated.
    pub fn mark_consolidated(&mut self, id: u64) {
        if let Some(m) = self.frags.get_mut(&id) {
            m.consolidated = true;
        }
    }

    /// Drops fragment bookkeeping that is entirely below the recycle LSN,
    /// already consolidated, and not in `referenced` (the Log Directory's
    /// surviving record pointers — the caller scans them once, after its
    /// directory purge, so this stays byte-accurate). Returns how many
    /// fragments were dropped and how many stored payload bytes their device
    /// blobs occupied — the reclaimed-bytes ledger for
    /// `PageStoreStats::frag_bytes_reclaimed`.
    pub fn gc_frags(&mut self, referenced: &HashSet<u64>) -> (usize, u64) {
        let recycle = self.recycle_lsn;
        let mut dropped = 0usize;
        let mut bytes = 0u64;
        self.frags.retain(|id, m| {
            let keep = referenced.contains(id) || !(m.consolidated && m.last_lsn < recycle);
            if !keep {
                dropped += 1;
                bytes += m.loc.len as u64;
            }
            keep
        });
        (dropped, bytes)
    }

    /// The highest LSN this replica knows about (may exceed persistent LSN
    /// when there are holes).
    pub fn newest_lsn(&self) -> Lsn {
        self.frags
            .values()
            .map(|m| m.last_lsn)
            .max()
            .unwrap_or(Lsn::ZERO)
            .max(self.persistent_lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{DbId, SliceId};

    fn meta(prev: u64, first: u64, last: u64) -> FragMeta {
        FragMeta {
            loc: DiskLoc { offset: 0, len: 0 },
            prev_last_lsn: Lsn(prev),
            first_lsn: Lsn(first),
            last_lsn: Lsn(last),
            consolidated: false,
        }
    }

    fn replica() -> SliceReplica {
        SliceReplica::new(SliceKey::new(DbId(1), SliceId(0)))
    }

    #[test]
    fn persistent_lsn_advances_with_chained_fragments() {
        let mut r = replica();
        assert_eq!(r.persistent_lsn(), Lsn::ZERO);
        assert!(matches!(
            r.ingest(meta(0, 1, 5)),
            IngestOutcome::Accepted(_)
        ));
        assert_eq!(r.persistent_lsn(), Lsn(5));
        assert!(matches!(
            r.ingest(meta(5, 6, 9)),
            IngestOutcome::Accepted(_)
        ));
        assert_eq!(r.persistent_lsn(), Lsn(9));
    }

    #[test]
    fn broken_chain_stalls_until_the_hole_fills() {
        let mut r = replica();
        r.ingest(meta(0, 1, 5));
        // The fragment after next arrives first.
        r.ingest(meta(10, 11, 15));
        assert_eq!(r.persistent_lsn(), Lsn(5));
        assert_eq!(r.missing_lsn_ranges(), vec![(Lsn(5), Lsn(11))]);
        assert_eq!(r.newest_lsn(), Lsn(15));
        // The hole fills: the chain extends across both fragments.
        r.ingest(meta(5, 6, 10));
        assert_eq!(r.persistent_lsn(), Lsn(15));
        assert!(r.missing_lsn_ranges().is_empty());
    }

    #[test]
    fn duplicates_and_covered_fragments_are_rejected() {
        let mut r = replica();
        assert!(matches!(
            r.ingest(meta(0, 1, 5)),
            IngestOutcome::Accepted(_)
        ));
        assert_eq!(r.ingest(meta(0, 1, 5)), IngestOutcome::Duplicate);
        // Entirely below persistent: covered.
        assert_eq!(r.ingest(meta(0, 1, 3)), IngestOutcome::Duplicate);
    }

    #[test]
    fn overlapping_recovery_resend_extends_the_chain() {
        let mut r = replica();
        r.ingest(meta(0, 1, 5));
        r.ingest(meta(9, 10, 12)); // pending: hole (5, 10)
        assert_eq!(r.persistent_lsn(), Lsn(5));
        // Recovery resends an overlapping fragment [3..9] linked below the
        // persistent LSN: it connects and bridges straight to the pending
        // fragment.
        assert!(matches!(
            r.ingest(meta(2, 3, 9)),
            IngestOutcome::Accepted(_)
        ));
        assert_eq!(r.persistent_lsn(), Lsn(12));
    }

    #[test]
    fn multiple_holes_reported_in_order() {
        let mut r = replica();
        r.ingest(meta(0, 1, 2));
        r.ingest(meta(4, 5, 6));
        r.ingest(meta(8, 9, 10));
        assert_eq!(
            r.missing_lsn_ranges(),
            vec![(Lsn(2), Lsn(5)), (Lsn(6), Lsn(9))]
        );
    }

    #[test]
    fn recycle_lsn_is_monotone_and_gc_respects_consolidation() {
        let mut r = replica();
        let id0 = match r.ingest(meta(0, 1, 5)) {
            IngestOutcome::Accepted(id) => id,
            _ => unreachable!(),
        };
        r.ingest(meta(5, 6, 9));
        r.advance_recycle_lsn(Lsn(10));
        r.advance_recycle_lsn(Lsn(7)); // lower: ignored
        assert_eq!(r.recycle_lsn(), Lsn(10));
        let unreferenced = HashSet::new();
        // Unconsolidated fragments are never GCed.
        assert_eq!(r.gc_frags(&unreferenced), (0, 0));
        r.mark_consolidated(id0);
        // A referenced fragment survives even once consolidated + recycled.
        let referenced: HashSet<u64> = [id0].into_iter().collect();
        assert_eq!(r.gc_frags(&referenced), (0, 0));
        // Unreferenced: dropped, and its stored payload bytes are reported.
        r.frags.get_mut(&id0).unwrap().loc.len = 64;
        assert_eq!(r.gc_frags(&unreferenced), (1, 64));
        assert_eq!(r.frags.len(), 1);
    }

    #[test]
    fn rebuilding_replica_reflects_donor_horizon() {
        let mut r =
            SliceReplica::new_rebuilding(SliceKey::new(DbId(1), SliceId(0)), Lsn(40), Lsn(10));
        assert_eq!(r.persistent_lsn(), Lsn(40));
        assert!(r.rebuilding);
        // New fragments chained at the donor horizon extend normally.
        assert!(matches!(
            r.ingest(meta(40, 41, 45)),
            IngestOutcome::Accepted(_)
        ));
        assert_eq!(r.persistent_lsn(), Lsn(45));
        // Fragments chained beyond it are pending (SAL will detect the
        // persistent-LSN regression and resend — Fig. 4(b)).
        r.ingest(meta(50, 51, 55));
        assert_eq!(r.persistent_lsn(), Lsn(45));
        assert_eq!(r.missing_lsn_ranges(), vec![(Lsn(45), Lsn(51))]);
    }

    #[test]
    fn inventory_and_lookup() {
        let mut r = replica();
        r.ingest(meta(0, 1, 5));
        r.ingest(meta(5, 6, 9));
        let inv = r.inventory();
        assert_eq!(
            inv,
            vec![(Lsn(1), Lsn(5), Lsn(0)), (Lsn(6), Lsn(9), Lsn(5))]
        );
        assert!(r.find_fragment(Lsn(1), Lsn(5)).is_some());
        assert!(r.find_fragment(Lsn(1), Lsn(9)).is_none());
    }
}
