//! Integration tests for the SAL's near-data scan planner: per-slice
//! `ScanSlice` fan-out, snapshot capping for quiet slices, replica retry,
//! and agreement with fetch-and-filter over `ReadPage`.

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use bytes::Bytes;
use taurus_common::clock::ManualClock;
use taurus_common::config::{NetworkProfile, StorageProfile};
use taurus_common::lsn::{LsnAllocator, LsnWatermark};
use taurus_common::page::PageType;
use taurus_common::record::{LogRecord, LogRecordGroup, RecordBody};
use taurus_common::scan::{
    evaluate_leaf_page, Aggregate, CmpOp, Field, Operand, ScanAccumulator, ScanRequest,
};
use taurus_common::{DbId, Lsn, NodeId, PageId, TaurusConfig};
use taurus_core::Sal;
use taurus_fabric::{Fabric, NodeKind};
use taurus_logstore::LogStoreCluster;
use taurus_pagestore::cluster::PageStoreOptions;
use taurus_pagestore::PageStoreCluster;

struct Harness {
    fabric: Fabric,
    logs: LogStoreCluster,
    pages: PageStoreCluster,
    anchor: Arc<LsnWatermark>,
    me: NodeId,
    cfg: TaurusConfig,
    lsns: LsnAllocator,
}

impl Harness {
    fn new(log_nodes: usize, page_nodes: usize) -> Harness {
        let clock = ManualClock::shared();
        let fabric = Fabric::new(clock.clone(), NetworkProfile::instant(), 77);
        let me = fabric.add_node(NodeKind::Compute);
        let cfg = TaurusConfig {
            log_buffer_bytes: 1,
            slice_buffer_bytes: 1,
            ..TaurusConfig::test()
        };
        let logs = LogStoreCluster::new(fabric.clone(), cfg.log_replicas, cfg.logstore_cache_bytes);
        logs.spawn_servers(log_nodes, StorageProfile::instant());
        let pages = PageStoreCluster::new(
            fabric.clone(),
            cfg.page_replicas,
            PageStoreOptions::default(),
        );
        pages.spawn_servers(page_nodes, StorageProfile::instant());
        Harness {
            fabric,
            logs,
            pages,
            anchor: Arc::new(LsnWatermark::new(Lsn::ZERO)),
            me,
            cfg,
            lsns: LsnAllocator::new(Lsn::ZERO),
        }
    }

    fn sal(&self) -> Arc<Sal> {
        Sal::create(
            self.cfg.clone(),
            DbId(1),
            self.me,
            self.logs.clone(),
            self.pages.clone(),
            Arc::clone(&self.anchor),
        )
        .unwrap()
    }

    /// Formats `page` (if asked) and inserts (k, v) at `idx`.
    fn write_kv(&self, sal: &Sal, page: u64, idx: u16, k: &str, v: &str, format: bool) -> Lsn {
        let mut records = Vec::new();
        if format {
            records.push(LogRecord::new(
                self.lsns.alloc(),
                PageId(page),
                RecordBody::Format {
                    ty: PageType::Leaf,
                    level: 0,
                },
            ));
        }
        records.push(LogRecord::new(
            self.lsns.alloc(),
            PageId(page),
            RecordBody::Insert {
                idx,
                key: Bytes::copy_from_slice(k.as_bytes()),
                val: Bytes::copy_from_slice(v.as_bytes()),
            },
        ));
        let group = LogRecordGroup::new(DbId(1), records);
        let end = group.end_lsn();
        sal.log_group(group).unwrap();
        sal.flush().unwrap();
        end
    }

    fn settle(&self, sal: &Sal) {
        sal.flush_all_slices();
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_micros(200));
            if sal.cv_lsn() == sal.durable_lsn() {
                break;
            }
        }
    }

    /// Three pages across three slices (pages_per_slice = 64 in the test
    /// config), two rows each. Returns the end LSN.
    fn seed_three_slices(&self, sal: &Sal) -> Lsn {
        self.write_kv(sal, 1, 0, "a", "1", true);
        self.write_kv(sal, 1, 1, "b", "2", false);
        self.write_kv(sal, 70, 0, "c", "3", true);
        self.write_kv(sal, 70, 1, "d", "4", false);
        self.write_kv(sal, 140, 0, "e", "5", true);
        let end = self.write_kv(sal, 140, 1, "f", "6", false);
        self.settle(sal);
        end
    }
}

/// Fetch-and-filter reference: every page of every slice through
/// `ReadPage`, folded through the same shared evaluator.
fn scan_via_read_page(h: &Harness, sal: &Sal, req: &ScanRequest, as_of: Lsn) -> ScanAccumulator {
    let mut acc = ScanAccumulator::default();
    for key in h.pages.slices() {
        if key.db != DbId(1) {
            continue;
        }
        // Cap the snapshot at the slice's own high-water mark, exactly as
        // the planner does — a quiet slice's replicas never reach the
        // global LSN.
        let mut pages = std::collections::BTreeSet::new();
        let mut high = Lsn::ZERO;
        for &node in &h.pages.replicas_of(key) {
            if let Ok(ids) = h.pages.page_ids_of(node, h.me, key) {
                pages.extend(ids);
            }
            if let Ok(p) = h.pages.persistent_lsn_of(node, h.me, key) {
                high = high.max(p);
            }
        }
        let eff = as_of.min(high);
        for page in pages {
            let buf = sal.read_page(page, Some(eff)).unwrap();
            evaluate_leaf_page(&buf, req, &mut acc).unwrap();
        }
    }
    acc.rows.sort_by(|a, b| a.0.cmp(&b.0));
    acc
}

#[test]
fn pushdown_scans_all_slices_sorted() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    let end = h.seed_three_slices(&sal);
    let scan = sal.scan_pushdown(&ScanRequest::full(), end).unwrap();
    assert_eq!(
        scan.rows
            .iter()
            .map(|(k, _)| k.as_slice())
            .collect::<Vec<_>>(),
        vec![b"a".as_slice(), b"b", b"c", b"d", b"e", b"f"]
    );
    assert_eq!(scan.pushdown_slices, 3);
    assert_eq!(scan.fallback_slices, 0);
    assert!(sal.ndp_stats.snapshot().bytes_returned > 0);
}

#[test]
fn pushdown_agrees_with_fetch_and_filter() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    let end = h.seed_three_slices(&sal);
    let req =
        ScanRequest::full().with_predicate(Field::Value, CmpOp::Ge, Operand::Bytes(b"3".to_vec()));
    let scan = sal.scan_pushdown(&req, end).unwrap();
    let reference = scan_via_read_page(&h, &sal, &req, end);
    assert_eq!(scan.rows, reference.rows);
    assert_eq!(scan.rows.len(), 4);
}

#[test]
fn pushdown_aggregate_counts_across_slices() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    let end = h.seed_three_slices(&sal);
    let req = ScanRequest::full().with_aggregate(Aggregate::Count);
    let scan = sal.scan_pushdown(&req, end).unwrap();
    assert!(scan.rows.is_empty());
    assert_eq!(req.aggregate.and_then(|a| scan.agg.result(a)), Some(6));
}

#[test]
fn pushdown_respects_snapshot_lsn() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    h.write_kv(&sal, 1, 0, "a", "1", true);
    let mid = h.write_kv(&sal, 70, 0, "c", "3", true);
    h.write_kv(&sal, 70, 1, "d", "4", false);
    h.settle(&sal);
    let scan = sal.scan_pushdown(&ScanRequest::full(), mid).unwrap();
    assert_eq!(
        scan.rows
            .iter()
            .map(|(k, _)| k.as_slice())
            .collect::<Vec<_>>(),
        vec![b"a".as_slice(), b"c"]
    );
}

#[test]
fn quiet_slice_snapshot_is_capped_not_refused() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    // Slice 0 goes quiet early; slice 1 keeps advancing the global LSN far
    // past slice 0's own last record. A global-snapshot scan must still
    // cover slice 0 (its replicas can never reach the global LSN).
    h.write_kv(&sal, 1, 0, "a", "1", true);
    for i in 0..10u16 {
        h.write_kv(&sal, 70, i, &format!("k{i:02}"), "v", i == 0);
    }
    h.settle(&sal);
    let end = sal.durable_lsn();
    let scan = sal.scan_pushdown(&ScanRequest::full(), end).unwrap();
    assert_eq!(scan.rows.len(), 11);
    assert_eq!(scan.rows[0].0, b"a");
    assert_eq!(scan.pushdown_slices, 2);
    assert_eq!(scan.fallback_slices, 0);
}

#[test]
fn scan_survives_one_replica_down() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    let end = h.seed_three_slices(&sal);
    // Kill one node: every slice replicated there must route around it.
    let key = h.pages.slices().into_iter().min().unwrap();
    let down = h.pages.replicas_of(key)[0];
    h.fabric.set_down(down);
    let scan = sal.scan_pushdown(&ScanRequest::full(), end).unwrap();
    assert_eq!(scan.rows.len(), 6);
    assert_eq!(scan.fallback_slices, 0);
    h.fabric.set_up(down);
}

#[test]
fn scan_fails_when_every_replica_is_down() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    let end = h.seed_three_slices(&sal);
    let nodes = h.pages.server_nodes();
    for &n in &nodes {
        h.fabric.set_down(n);
    }
    assert!(sal.scan_pushdown(&ScanRequest::full(), end).is_err());
    for &n in &nodes {
        h.fabric.set_up(n);
    }
}

#[test]
fn tiny_budgets_force_continuations_and_still_agree() {
    let h = Harness::new(3, 6);
    let sal = h.sal();
    // test() config budgets are tiny (64 rows / 8 KiB); write enough rows
    // into one slice that a single ScanSlice call cannot finish it.
    let mut expect = Vec::new();
    for i in 0..30u16 {
        let page = 1 + u64::from(i) / 10;
        h.write_kv(&sal, page, i % 10, &format!("k{i:03}"), "v", i % 10 == 0);
        expect.push(format!("k{i:03}").into_bytes());
    }
    for i in 0..70u16 {
        let page = 70 + u64::from(i) / 10;
        h.write_kv(&sal, page, i % 10, &format!("m{i:03}"), "v", i % 10 == 0);
        expect.push(format!("m{i:03}").into_bytes());
    }
    h.settle(&sal);
    let end = sal.durable_lsn();
    let scan = sal.scan_pushdown(&ScanRequest::full(), end).unwrap();
    assert_eq!(
        scan.rows.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
        expect
    );
    // With a 64-row budget per call and 70 slots in slice 1, at least one
    // continuation happened: more ScanSlice calls than slices.
    let snap = sal.ndp_stats.snapshot();
    assert!(
        snap.slice_calls > 2,
        "expected continuations, got {} calls",
        snap.slice_calls
    );
}
