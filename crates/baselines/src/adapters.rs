//! [`Executor`] adapters so the same workload driver measures Taurus, its
//! replicas, and every baseline architecture.

use std::sync::Arc;

use taurus_common::{Result, TaurusError};
use taurus_engine::{MasterEngine, ReplicaEngine, TaurusDb};
use taurus_workload::{Executor, Op, TxnSpec};

const CONFLICT_RETRIES: usize = 24;

/// Executes transactions on the Taurus master, retrying write conflicts.
pub struct TaurusExecutor {
    pub db: Arc<TaurusDb>,
}

impl TaurusExecutor {
    pub fn new(db: Arc<TaurusDb>) -> Self {
        TaurusExecutor { db }
    }
}

impl Executor for TaurusExecutor {
    fn execute(&self, spec: &TxnSpec) -> Result<()> {
        let master = self.db.master();
        let mut attempt = 0;
        loop {
            match try_txn(&master, spec) {
                Err(TaurusError::WriteConflict { .. }) if attempt < CONFLICT_RETRIES => {
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn load(&self, data: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        let master = self.db.master();
        let mut txn = master.begin();
        for (k, v) in data {
            txn.put(k, v)?;
        }
        txn.commit()?;
        Ok(())
    }
}

fn try_txn(master: &Arc<MasterEngine>, spec: &TxnSpec) -> Result<()> {
    let mut txn = master.begin();
    for op in &spec.ops {
        match op {
            Op::Get(k) => {
                let _ = txn.get(k)?;
            }
            Op::Put(k, v) => txn.put(k, v)?,
            Op::Delete(k) => txn.delete(k)?,
            Op::Scan(k, n) => {
                let _ = txn.scan(k, *n)?;
            }
        }
    }
    txn.commit()?;
    Ok(())
}

/// Executes read-only transactions on a Taurus read replica.
pub struct ReplicaExecutor {
    pub replica: Arc<ReplicaEngine>,
}

impl Executor for ReplicaExecutor {
    fn execute(&self, spec: &TxnSpec) -> Result<()> {
        if spec.has_writes() {
            return Err(TaurusError::ReadOnlyReplica);
        }
        let txn = self.replica.begin();
        for op in &spec.ops {
            match op {
                Op::Get(k) => {
                    let _ = txn.get(k)?;
                }
                Op::Scan(k, n) => {
                    let _ = txn.scan(k, *n)?;
                }
                _ => unreachable!("filtered above"),
            }
        }
        Ok(())
    }

    fn load(&self, _data: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        Err(TaurusError::ReadOnlyReplica)
    }
}

/// Executes transactions on the monolithic local-storage engine.
pub struct LocalExecutor {
    pub engine: Arc<crate::monolithic::LocalEngine>,
}

impl Executor for LocalExecutor {
    fn execute(&self, spec: &TxnSpec) -> Result<()> {
        let mut writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        for op in &spec.ops {
            match op {
                Op::Get(k) => {
                    let _ = self.engine.get(k)?;
                }
                Op::Scan(k, n) => {
                    let _ = self.engine.scan(k, *n)?;
                }
                Op::Put(k, v) => writes.push((k.clone(), Some(v.clone()))),
                Op::Delete(k) => writes.push((k.clone(), None)),
            }
        }
        if !writes.is_empty() {
            self.engine.apply(&writes)?;
        }
        Ok(())
    }

    fn load(&self, data: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        let writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = data
            .iter()
            .map(|(k, v)| (k.clone(), Some(v.clone())))
            .collect();
        self.engine.apply(&writes)?;
        // Keep the dirty backlog bounded during loads.
        self.engine.flush_dirty(64)?;
        Ok(())
    }
}

/// Executes transactions on a quorum-storage engine (Aurora/PolarDB-style).
pub struct QuorumExecutor {
    pub engine: Arc<crate::quorum::QuorumEngine>,
}

impl Executor for QuorumExecutor {
    fn execute(&self, spec: &TxnSpec) -> Result<()> {
        let mut writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        for op in &spec.ops {
            match op {
                Op::Get(k) => {
                    let _ = self.engine.get(k)?;
                }
                Op::Scan(k, n) => {
                    let _ = self.engine.scan(k, *n)?;
                }
                Op::Put(k, v) => writes.push((k.clone(), Some(v.clone()))),
                Op::Delete(k) => writes.push((k.clone(), None)),
            }
        }
        if !writes.is_empty() {
            self.engine.apply(&writes)?;
        }
        Ok(())
    }

    fn load(&self, data: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        let writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = data
            .iter()
            .map(|(k, v)| (k.clone(), Some(v.clone())))
            .collect();
        self.engine.apply(&writes)
    }
}

/// Executes on a Socrates-style deployment: Taurus mechanics plus the extra
/// read-tier crossings.
pub struct SocratesExecutor {
    pub db: Arc<crate::socrates::SocratesDb>,
}

impl Executor for SocratesExecutor {
    fn execute(&self, spec: &TxnSpec) -> Result<()> {
        // Charge the tier structure for each read op that would touch the
        // page-server layer (buffer-pool misses are where it bites; we
        // charge per read op conservatively scaled by the miss probability
        // built into charge_read_tier).
        for op in &spec.ops {
            if matches!(op, Op::Get(_) | Op::Scan(..)) {
                self.db.charge_read_tier();
            }
        }
        let master = self.db.master();
        let mut attempt = 0;
        loop {
            match try_txn(&master, spec) {
                Err(TaurusError::WriteConflict { .. }) if attempt < CONFLICT_RETRIES => {
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn load(&self, data: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        let master = self.db.master();
        let mut txn = master.begin();
        for (k, v) in data {
            txn.put(k, v)?;
        }
        txn.commit()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::clock::ManualClock;
    use taurus_common::TaurusConfig;
    use taurus_workload::{run_workload, SysbenchMode, SysbenchWorkload, Workload};

    #[test]
    fn taurus_executor_runs_a_small_sysbench() {
        let db = TaurusDb::launch_with_clock(TaurusConfig::test(), 4, 4, ManualClock::shared(), 1)
            .unwrap();
        let exec = TaurusExecutor::new(db);
        let w = SysbenchWorkload::new(SysbenchMode::Mixed, 200, 32);
        taurus_workload::driver::load_initial(&exec, &w).unwrap();
        let report = run_workload(&exec, &w, 2, 10, 9);
        assert_eq!(report.transactions + report.aborts, 20);
        assert!(report.transactions > 0);
    }

    #[test]
    fn replica_executor_rejects_writes() {
        let db = TaurusDb::launch_with_clock(TaurusConfig::test(), 4, 4, ManualClock::shared(), 2)
            .unwrap();
        let replica = db.add_replica().unwrap();
        let exec = ReplicaExecutor { replica };
        let w = SysbenchWorkload::new(SysbenchMode::WriteOnly, 100, 16);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let spec = w.next_txn(&mut rng);
        assert!(exec.execute(&spec).is_err());
    }

    #[test]
    fn local_executor_runs_reads_and_writes() {
        let engine = crate::monolithic::LocalEngine::optimized(
            ManualClock::shared(),
            taurus_common::config::StorageProfile::instant(),
            256,
        )
        .unwrap();
        let exec = LocalExecutor { engine };
        let w = SysbenchWorkload::new(SysbenchMode::Mixed, 100, 16);
        taurus_workload::driver::load_initial(&exec, &w).unwrap();
        let report = run_workload(&exec, &w, 2, 20, 4);
        assert_eq!(report.aborts, 0);
        assert_eq!(report.transactions, 40);
    }
}
