//! Multi-connection benchmark driver.
//!
//! Plays a [`Workload`] against any [`Executor`] (Taurus, a baseline, …)
//! from `connections` concurrent client threads for a fixed number of
//! transactions per connection, reporting throughput and latency.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

use taurus_common::clock::{ClockRef, SystemClock};
use taurus_common::metrics::LatencyRecorder;
use taurus_common::Result;

use crate::{TxnSpec, Workload};

/// Anything that can execute transactions: the Taurus master, a baseline
/// engine, or a read replica (read-only transactions).
pub trait Executor: Send + Sync {
    /// Executes one transaction atomically. Implementations retry internal
    /// write-write conflicts a bounded number of times before surfacing the
    /// error.
    fn execute(&self, txn: &TxnSpec) -> Result<()>;

    /// Loads the initial dataset (bulk path; need not be transactional).
    fn load(&self, data: &[(Vec<u8>, Vec<u8>)]) -> Result<()>;
}

/// Outcome of one driver run.
#[derive(Clone, Debug)]
pub struct DriverReport {
    pub workload: String,
    pub connections: usize,
    pub transactions: u64,
    pub aborts: u64,
    pub wall_secs: f64,
    /// Committed transactions per second.
    pub tps: f64,
    /// Individual operations (reads+writes) per second.
    pub ops_per_sec: f64,
    pub mean_latency_us: f64,
    pub p50_latency_us: u64,
    pub p95_latency_us: u64,
    pub p99_latency_us: u64,
}

impl DriverReport {
    /// One aligned text row for harness output.
    pub fn row(&self) -> String {
        format!(
            "{:<24} conns={:<4} txns={:<8} tps={:<10.0} ops/s={:<10.0} lat(mean/p50/p95/p99 µs)={:.0}/{}/{}/{} aborts={}",
            self.workload,
            self.connections,
            self.transactions,
            self.tps,
            self.ops_per_sec,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.aborts
        )
    }
}

/// Runs `txns_per_conn` transactions on each of `connections` threads,
/// timing against the real clock.
pub fn run_workload(
    executor: &dyn Executor,
    workload: &dyn Workload,
    connections: usize,
    txns_per_conn: u64,
    seed: u64,
) -> DriverReport {
    run_workload_with_clock(
        executor,
        workload,
        connections,
        txns_per_conn,
        seed,
        SystemClock::shared(),
    )
}

/// Same as [`run_workload`] but timing against a caller-supplied [`ClockRef`],
/// so deterministic harnesses can drive the benchmark machinery on virtual
/// time. All timestamps in the report come from this clock.
pub fn run_workload_with_clock(
    executor: &dyn Executor,
    workload: &dyn Workload,
    connections: usize,
    txns_per_conn: u64,
    seed: u64,
    clock: ClockRef,
) -> DriverReport {
    let latency = LatencyRecorder::new();
    let committed = AtomicU64::new(0);
    let ops = AtomicU64::new(0);
    let aborts = AtomicU64::new(0);
    let start_us = clock.now_us();
    std::thread::scope(|scope| {
        for conn in 0..connections {
            let latency = &latency;
            let committed = &committed;
            let ops = &ops;
            let aborts = &aborts;
            let clock = &clock;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (conn as u64).wrapping_mul(0x9e37_79b9));
                for _ in 0..txns_per_conn {
                    let txn = workload.next_txn(&mut rng);
                    let t0 = clock.now_us();
                    match executor.execute(&txn) {
                        Ok(()) => {
                            latency.record(clock.now_us().saturating_sub(t0));
                            committed.fetch_add(1, Ordering::Relaxed);
                            ops.fetch_add(txn.ops.len() as u64, Ordering::Relaxed);
                        }
                        Err(_) => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = (clock.now_us().saturating_sub(start_us) as f64 / 1e6).max(1e-9);
    let committed = committed.load(Ordering::Relaxed);
    let summary = latency.summary();
    DriverReport {
        workload: workload.name().to_string(),
        connections,
        transactions: committed,
        aborts: aborts.load(Ordering::Relaxed),
        wall_secs: wall,
        tps: committed as f64 / wall,
        ops_per_sec: ops.load(Ordering::Relaxed) as f64 / wall,
        mean_latency_us: summary.map(|s| s.mean_us).unwrap_or(0.0),
        p50_latency_us: summary.map(|s| s.p50_us).unwrap_or(0),
        p95_latency_us: summary.map(|s| s.p95_us).unwrap_or(0),
        p99_latency_us: summary.map(|s| s.p99_us).unwrap_or(0),
    }
}

/// Loads a workload's initial dataset in chunks.
pub fn load_initial(executor: &dyn Executor, workload: &dyn Workload) -> Result<()> {
    let data = workload.initial_data();
    for chunk in data.chunks(256) {
        executor.load(chunk)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sysbench::{SysbenchMode, SysbenchWorkload};
    use crate::Op;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// Trivial in-memory executor for driver-machinery tests.
    #[derive(Default)]
    struct MemExec {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        fail_every: Option<u64>,
        calls: AtomicU64,
    }

    impl Executor for MemExec {
        fn execute(&self, txn: &TxnSpec) -> Result<()> {
            let n = self.calls.fetch_add(1, Ordering::Relaxed);
            if let Some(k) = self.fail_every {
                if n % k == k - 1 {
                    return Err(taurus_common::TaurusError::KeyNotFound);
                }
            }
            let mut map = self.map.lock();
            for op in &txn.ops {
                match op {
                    Op::Get(k) => {
                        let _ = map.get(k);
                    }
                    Op::Put(k, v) => {
                        map.insert(k.clone(), v.clone());
                    }
                    Op::Delete(k) => {
                        map.remove(k);
                    }
                    Op::Scan(k, n) => {
                        let _ = map.range(k.clone()..).take(*n).count();
                    }
                }
            }
            Ok(())
        }

        fn load(&self, data: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
            let mut map = self.map.lock();
            for (k, v) in data {
                map.insert(k.clone(), v.clone());
            }
            Ok(())
        }
    }

    #[test]
    fn driver_counts_transactions_and_ops() {
        let exec = MemExec::default();
        let w = SysbenchWorkload::new(SysbenchMode::WriteOnly, 100, 16);
        load_initial(&exec, &w).unwrap();
        let report = run_workload(&exec, &w, 4, 25, 1);
        assert_eq!(report.transactions, 100);
        assert_eq!(report.aborts, 0);
        assert!(report.tps > 0.0);
        assert!(report.ops_per_sec >= report.tps);
        assert_eq!(exec.map.lock().len(), 100);
    }

    #[test]
    fn driver_reports_aborts_separately() {
        let exec = MemExec {
            fail_every: Some(5),
            ..MemExec::default()
        };
        let w = SysbenchWorkload::new(SysbenchMode::ReadOnly, 100, 16);
        let report = run_workload(&exec, &w, 2, 50, 2);
        assert_eq!(report.transactions + report.aborts, 100);
        assert_eq!(report.aborts, 20);
    }

    #[test]
    fn per_connection_seeds_differ() {
        // Two connections must not replay the same op stream: check by
        // counting distinct keys written.
        let exec = MemExec::default();
        let w = SysbenchWorkload::new(SysbenchMode::WriteOnly, 10_000, 8);
        run_workload(&exec, &w, 2, 20, 3);
        // 2 conns * 20 txns * up to 3 distinct rows; identical streams
        // would produce at most ~60 but identical sets. Just require > 40
        // distinct keys (collisions allowed).
        assert!(exec.map.lock().len() > 40);
    }

    #[test]
    fn report_row_is_renderable() {
        let exec = MemExec::default();
        let w = SysbenchWorkload::new(SysbenchMode::ReadOnly, 10, 8);
        let report = run_workload(&exec, &w, 1, 5, 4);
        let row = report.row();
        assert!(row.contains("sysbench-read-only"));
        assert!(row.contains("conns=1"));
    }
}
