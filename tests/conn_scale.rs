//! Differential tests for per-node RPC coalescing (PR 10).
//!
//! A grouped fan-out — one `ReadPages`/`ScanSlice` envelope per Page Store
//! node, demuxed per slice — is a pure transport optimization: for any
//! workload it must return byte-identical results to the per-slice path,
//! at the live head and at a pinned snapshot, with a concurrent writer
//! churning and after a replica is killed mid-run. And because reads are
//! reads, the *end state* of two clusters running the same seeded workload
//! must not depend on whether coalescing was on: durable/CV LSNs, every
//! page image, and every scan answer agree (the determinism fingerprint).

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use taurus::common::clock::ManualClock;
use taurus::common::scan::ScanRequest;
use taurus::engine::MasterEngine;
use taurus::prelude::*;

fn launch(seed: u64, coalescing: bool) -> Arc<TaurusDb> {
    let cfg = TaurusConfig {
        pages_per_slice: 4, // spread even small tables across several slices
        rpc_coalescing: coalescing,
        ..TaurusConfig::test()
    };
    TaurusDb::launch_with_clock(cfg, 4, 6, ManualClock::shared(), seed).unwrap()
}

fn settle(db: &TaurusDb) {
    let master = db.master();
    master.sal.flush_all_slices();
    for _ in 0..6000 {
        master.maintain();
        if master.sal.cv_lsn() == master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("k{i:03}").into_bytes()
}

/// Every page id of the database, straight from the Page Stores' slice
/// directories (first reachable replica per slice).
fn all_page_ids(db: &TaurusDb) -> Vec<PageId> {
    let mut ids = BTreeSet::new();
    for key in db.pages.slices() {
        if key.db != db.db {
            continue;
        }
        for node in db.pages.replicas_of(key) {
            if let Ok(pages) = db.pages.page_ids_of(node, node, key) {
                ids.extend(pages);
                break;
            }
        }
    }
    ids.into_iter().collect()
}

/// Grouped batch vs the per-page path on the same database: byte identity.
fn check_grouped_matches_singles(db: &TaurusDb, ids: &[PageId], as_of: Option<Lsn>) {
    let sal = &db.master().sal;
    let batched = sal.read_pages(ids, as_of).unwrap();
    assert_eq!(batched.len(), ids.len(), "one result per requested page");
    for (i, (page, buf)) in batched.iter().enumerate() {
        assert_eq!(*page, ids[i], "results must come back in request order");
        let single = sal.read_page(*page, as_of).unwrap();
        assert_eq!(buf.lsn(), single.lsn(), "page {page:?} at {as_of:?}");
        assert_eq!(
            buf.as_bytes(),
            single.as_bytes(),
            "page {page:?} bytes diverged at {as_of:?}"
        );
    }
}

/// Coalesced cluster vs per-slice cluster after identical histories: the
/// same pages hold the same bytes, and the LSN horizons agree — the
/// determinism fingerprint does not see the transport.
fn check_clusters_agree(on: &TaurusDb, off: &TaurusDb) {
    let (mon, moff) = (on.master(), off.master());
    assert_eq!(mon.sal.durable_lsn(), moff.sal.durable_lsn(), "durable LSN");
    assert_eq!(mon.sal.cv_lsn(), moff.sal.cv_lsn(), "CV LSN");
    let (ids_on, ids_off) = (all_page_ids(on), all_page_ids(off));
    assert_eq!(ids_on, ids_off, "page id sets diverged");
    let read_on = mon.sal.read_pages(&ids_on, None).unwrap();
    let read_off = moff.sal.read_pages(&ids_off, None).unwrap();
    for ((pa, ba), (pb, bb)) in read_on.iter().zip(read_off.iter()) {
        assert_eq!(pa, pb);
        assert_eq!(ba.as_bytes(), bb.as_bytes(), "page {pa:?} bytes diverged");
    }
    // Pushed-down scans (grouped per node on `on`, per slice on `off`)
    // return the same rows in the same order.
    let scan_on = mon.scan_pushdown(&ScanRequest::full()).unwrap();
    let scan_off = moff.scan_pushdown(&ScanRequest::full()).unwrap();
    assert_eq!(scan_on.rows, scan_off.rows, "pushdown rows diverged");
}

// ---------------------------------------------------------------------
// Proptest: random workload on twin clusters, live head + pinned snapshot
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum WOp {
    Put(u32, Vec<u8>),
    Del(u32),
}

fn apply(master: &Arc<MasterEngine>, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &WOp) {
    match op {
        WOp::Put(i, v) => {
            let k = key(*i);
            let mut t = master.begin();
            t.put(&k, v).unwrap();
            t.commit().unwrap();
            model.insert(k, v.clone());
        }
        WOp::Del(i) => {
            let k = key(*i);
            let mut t = master.begin();
            t.delete(&k).unwrap();
            t.commit().unwrap();
            model.remove(&k);
        }
    }
}

fn ops(max: usize) -> impl Strategy<Value = Vec<WOp>> {
    let value = || prop::collection::vec(any::<u8>(), 0..24);
    prop::collection::vec(
        prop_oneof![
            (0..48u32, value()).prop_map(|(k, v)| WOp::Put(k, v)),
            (0..48u32, value()).prop_map(|(k, v)| WOp::Put(k, v)),
            (0..48u32, value()).prop_map(|(k, v)| WOp::Put(k, v)),
            (0..48u32).prop_map(WOp::Del),
        ],
        1..max,
    )
}

proptest! {
    // Every case launches two full simulated clusters; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn coalesced_path_is_invisible_to_results(
        pre in ops(80),
        post in ops(30),
    ) {
        let on = launch(31, true);
        let off = launch(31, false);
        let mut model = BTreeMap::new();
        let mut model_off = BTreeMap::new();
        // A page-spanning base table: without it a tiny random workload
        // fits one slice and the grouped path would never engage.
        for db in [&on, &off] {
            let master = db.master();
            for i in 0..300u32 {
                let mut t = master.begin();
                t.put(&key(i), &[b'p'; 240]).unwrap();
                t.commit().unwrap();
            }
        }
        for op in &pre {
            apply(&on.master(), &mut model, op);
            apply(&off.master(), &mut model_off, op);
        }
        settle(&on);
        settle(&off);
        let ids = all_page_ids(&on);
        prop_assert!(!ids.is_empty());

        // Grouped vs per-page on the coalesced cluster, live head.
        check_grouped_matches_singles(&on, &ids, None);
        // Twin clusters agree bit for bit.
        check_clusters_agree(&on, &off);

        // Pin a snapshot on the coalesced cluster, keep writing, and
        // re-check at the *pinned* LSN: grouped reads must materialize the
        // old version of every page.
        let pin = on.master().create_snapshot("pin");
        for op in &post {
            apply(&on.master(), &mut model, op);
        }
        settle(&on);
        check_grouped_matches_singles(&on, &ids, Some(pin));

        // The coalesced cluster really did coalesce (multi-slice plans
        // exist at pages_per_slice=4), and the per-slice cluster never did.
        prop_assert!(on.master().sal.stats.snapshot().grouped_envelopes > 0);
        prop_assert_eq!(off.master().sal.stats.snapshot().grouped_envelopes, 0);
    }
}

// ---------------------------------------------------------------------
// Concurrent writer + mid-run replica kill (deterministic)
// ---------------------------------------------------------------------

#[test]
fn grouped_reads_survive_concurrent_writes_and_replica_loss() {
    let db = launch(47, true);
    let master = db.master();
    for i in 0..300u32 {
        let mut t = master.begin();
        let v = format!("v{}", i % 7).repeat(40);
        t.put(&key(i), v.as_bytes()).unwrap();
        t.commit().unwrap();
    }
    settle(&db);
    let ids = all_page_ids(&db);
    let pin = master.create_snapshot("pin");

    // A writer hammers a disjoint key range the whole time, so grouped
    // write envelopes keep flowing while we read.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let master = db.master();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut t = master.begin();
                t.put(format!("w{i:06}").as_bytes(), b"noise").unwrap();
                t.commit().unwrap();
                i += 1;
            }
        })
    };

    for round in 0..5 {
        if round == 2 {
            // Kill a Page Store replica mid-run: grouped envelopes to the
            // dead node fail over per slice, which retries healthy
            // replicas — results stay identical to the per-page path.
            db.fabric.set_down(db.pages.server_nodes()[0]);
        }
        check_grouped_matches_singles(&db, &ids, Some(pin));
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();

    let stats = master.sal.stats.snapshot();
    assert!(stats.grouped_envelopes > 0, "grouped path must have run");
    assert!(
        stats.grouped_fallback_slices > 0,
        "the dead node must have forced per-slice fallback"
    );
}
