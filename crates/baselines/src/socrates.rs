//! A Socrates-style four-tier deployment (paper §2).
//!
//! Socrates splits the database into compute, XLOG, page servers, and XStore
//! — four network-separated tiers versus Taurus's two. The paper attributes
//! the performance difference to exactly that: "Taurus has just two
//! network-separated tiers, while Socrates requires four", and to the page
//! servers caching pages locally because storage is another hop away.
//!
//! This baseline reproduces the structural difference on top of the real
//! Taurus stack: every page read traverses an extra network-separated tier
//! (the page-server relay node), and a configurable fraction of reads miss
//! the page-server cache and pay the further hop to the storage tier. The
//! write path matches Socrates: log lands durably in the log tier (same as
//! Taurus's Log Stores) and page servers consume it asynchronously.

use std::sync::Arc;

use taurus_common::clock::ClockRef;
use taurus_common::{NodeId, Result, TaurusConfig};
use taurus_engine::{MasterEngine, TaurusDb};
use taurus_fabric::NodeKind;

/// A Taurus deployment re-plumbed with Socrates's tier structure on reads.
pub struct SocratesDb {
    pub inner: Arc<TaurusDb>,
    /// The page-server tier relay node.
    relay: NodeId,
    /// Probability that a read misses the page-server cache and pays the
    /// extra hop to the storage tier (XStore).
    pub xstore_miss_rate: f64,
}

impl SocratesDb {
    pub fn launch(
        cfg: TaurusConfig,
        log_nodes: usize,
        page_nodes: usize,
        clock: ClockRef,
        seed: u64,
    ) -> Result<SocratesDb> {
        let inner = TaurusDb::launch_with_clock(cfg, log_nodes, page_nodes, clock, seed)?;
        let relay = inner.fabric.add_node(NodeKind::Compute);
        Ok(SocratesDb {
            inner,
            relay,
            xstore_miss_rate: 0.3,
        })
    }

    pub fn master(&self) -> Arc<MasterEngine> {
        self.inner.master()
    }

    /// Charges the extra tier crossings a Socrates read performs compared to
    /// a Taurus read: one compute→page-server hop always, plus a
    /// page-server→XStore hop on a cache miss. Called by the executor
    /// adapter around each read.
    pub fn charge_read_tier(&self) {
        let fabric = &self.inner.fabric;
        // compute -> page server -> (response) : one extra RPC round trip.
        let _ = fabric.call(self.relay, self.relay, || ());
        if self.xstore_miss_rate > 0.0 {
            let roll = fabric.rand_below(1000) as f64 / 1000.0;
            if roll < self.xstore_miss_rate {
                // page server -> XStore fetch.
                let _ = fabric.call(self.relay, self.relay, || ());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::clock::{Clock, ManualClock};
    use taurus_common::config::NetworkProfile;

    #[test]
    fn reads_pay_the_extra_tier() {
        let clock = ManualClock::shared();
        let cfg = TaurusConfig {
            network: NetworkProfile {
                hop_us: 100,
                jitter_us: 0,
                master_nic_bytes_per_sec: 0,
            },
            ..TaurusConfig::test()
        };
        let mut db = SocratesDb::launch(cfg, 4, 4, clock.clone(), 3).unwrap();
        db.xstore_miss_rate = 0.0;
        let before = clock.now_us();
        db.charge_read_tier();
        assert_eq!(clock.now_us() - before, 200, "one extra RPC round trip");
    }

    #[test]
    fn misses_pay_the_storage_tier_too() {
        let clock = ManualClock::shared();
        let cfg = TaurusConfig {
            network: NetworkProfile {
                hop_us: 100,
                jitter_us: 0,
                master_nic_bytes_per_sec: 0,
            },
            ..TaurusConfig::test()
        };
        let mut db = SocratesDb::launch(cfg, 4, 4, clock.clone(), 3).unwrap();
        db.xstore_miss_rate = 1.0;
        let before = clock.now_us();
        db.charge_read_tier();
        assert_eq!(clock.now_us() - before, 400, "two extra RPC round trips");
    }

    #[test]
    fn underlying_database_still_works() {
        let db = SocratesDb::launch(TaurusConfig::test(), 4, 4, ManualClock::shared(), 4).unwrap();
        let master = db.master();
        let mut t = master.begin();
        t.put(b"k", b"v").unwrap();
        t.commit().unwrap();
        assert_eq!(master.get(b"k").unwrap(), Some(b"v".to_vec()));
    }
}
