//! Offline shim for `rand` 0.9.
//!
//! Provides the subset the workspace uses: the [`Rng`]/[`RngCore`] traits
//! with `random`, `random_range`, `random_bool`, and `fill`; [`SeedableRng`]
//! with `seed_from_u64`; and [`rngs::StdRng`] backed by xoshiro256++ seeded
//! via SplitMix64. Deterministic across platforms for a given seed (the
//! stream differs from real `rand`, which is fine — the workspace only
//! relies on same-seed reproducibility, not on matching upstream streams).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values producible uniformly from raw bits (the `StandardUniform`
/// distribution in real rand).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full u64
/// domain) via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of range");
        f64::sample_standard(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_os_rng() -> Self {
        // No OS entropy in the sim container: derive from the monotonic
        // clock, which is good enough for the non-deterministic paths that
        // opt into it.
        let nanos = std::time::UNIX_EPOCH
            .elapsed()
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, full 64-bit output, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias — the workspace does not rely on SmallRng being different.
    pub type SmallRng = StdRng;
}

/// Process-global convenience RNG (`rand::rng()` in rand 0.9). Clock-seeded,
/// NOT reproducible — simulation code must use a seeded `StdRng` instead
/// (taurus-lint enforces this).
pub fn rng() -> rngs::StdRng {
    SeedableRng::from_os_rng()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(5..=15u64);
            assert!((5..=15).contains(&w));
            let u: usize = r.random_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }
}
