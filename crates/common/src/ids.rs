//! Identifiers for the entities of a Taurus cluster.
//!
//! * [`PageId`] — a database page; pages are partitioned into slices.
//! * [`SliceId`] / [`SliceKey`] — a slice is a fixed-size set of pages, the
//!   unit of placement and replication on Page Stores (paper §3.2: 10 GB in
//!   production, configurable here).
//! * [`PLogId`] — a PLog, the append-only replicated storage object of the
//!   Log Store layer (paper §3.3; 24-byte identifiers in production).
//! * [`NodeId`] — a storage or compute node in the cluster fabric.
//! * [`DbId`] — a database; Page/Log Stores are multi-tenant and host slices
//!   and PLogs from many databases.
//! * [`TxnId`] — a front-end transaction.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
                 serde::Serialize, serde::Deserialize)]
        pub struct $name(pub u64);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, ":{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, ":{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self { $name(v) }
        }
    };
}

id_type!(
    /// Identifier of a database page. Page 0 of every database is the control
    /// page; transaction control records (commit/abort) are addressed to it.
    PageId,
    "page"
);
id_type!(
    /// Identifier of a slice within one database. Slice membership is
    /// deterministic: `slice = page / pages_per_slice`.
    SliceId,
    "slice"
);
id_type!(
    /// Identifier of a database. Storage nodes are multi-tenant.
    DbId,
    "db"
);
id_type!(
    /// Identifier of a node (host) in the cluster: a Log Store server, a Page
    /// Store server, or a compute node.
    NodeId,
    "node"
);
id_type!(
    /// Identifier of a front-end transaction.
    TxnId,
    "txn"
);

impl PageId {
    /// The control page of a database. It never stores user data; commit and
    /// abort records are routed to its slice so they reach the Page Stores
    /// and read replicas in LSN order.
    pub const CONTROL: PageId = PageId(0);

    /// The slice this page belongs to, given the configured slice geometry.
    #[inline]
    pub fn slice(self, pages_per_slice: u64) -> SliceId {
        SliceId(self.0 / pages_per_slice)
    }
}

/// Globally unique identifier of a slice: a slice id qualified by its
/// database. Page Stores host slices from many databases (paper §3.4), so all
/// Page Store APIs take a `SliceKey`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct SliceKey {
    pub db: DbId,
    pub slice: SliceId,
}

impl SliceKey {
    pub fn new(db: DbId, slice: SliceId) -> Self {
        SliceKey { db, slice }
    }
}

impl fmt::Display for SliceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.db, self.slice)
    }
}

/// Identifier of a PLog. The production system uses an opaque 24-byte id
/// assigned by the cluster manager; we reproduce the same width as three
/// 64-bit words: the database it belongs to, a per-database sequence number,
/// and an incarnation counter that distinguishes re-created PLogs.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct PLogId {
    /// Owning database.
    pub db: DbId,
    /// Sequence number within the database's PLog stream (0 is reserved for
    /// metadata PLogs).
    pub seq: u64,
    /// Incarnation: bumped each time the cluster manager has to re-create a
    /// PLog after a failed write so ids never collide.
    pub incarnation: u64,
}

impl PLogId {
    pub fn new(db: DbId, seq: u64, incarnation: u64) -> Self {
        PLogId {
            db,
            seq,
            incarnation,
        }
    }

    /// Byte width of the identifier (matches the paper's 24-byte ids).
    pub const WIDTH: usize = 24;

    /// Serializes the id to its fixed 24-byte wire form.
    pub fn to_bytes(self) -> [u8; Self::WIDTH] {
        let mut out = [0u8; Self::WIDTH];
        out[0..8].copy_from_slice(&self.db.0.to_le_bytes());
        out[8..16].copy_from_slice(&self.seq.to_le_bytes());
        out[16..24].copy_from_slice(&self.incarnation.to_le_bytes());
        out
    }

    /// Parses the fixed 24-byte wire form.
    pub fn from_bytes(b: &[u8; Self::WIDTH]) -> Self {
        let word = |i: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[i..i + 8]);
            u64::from_le_bytes(w)
        };
        PLogId {
            db: DbId(word(0)),
            seq: word(8),
            incarnation: word(16),
        }
    }
}

impl fmt::Display for PLogId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plog:{}.{}.{}", self.db.0, self.seq, self.incarnation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_to_slice_mapping() {
        assert_eq!(PageId(0).slice(1024), SliceId(0));
        assert_eq!(PageId(1023).slice(1024), SliceId(0));
        assert_eq!(PageId(1024).slice(1024), SliceId(1));
        assert_eq!(PageId(10_000_000).slice(1024), SliceId(9765));
    }

    #[test]
    fn plog_id_roundtrips_through_24_bytes() {
        let id = PLogId::new(DbId(7), 42, 3);
        let bytes = id.to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(PLogId::from_bytes(&bytes), id);
    }

    #[test]
    fn slice_key_display_and_ordering() {
        let a = SliceKey::new(DbId(1), SliceId(2));
        let b = SliceKey::new(DbId(1), SliceId(3));
        assert!(a < b);
        assert_eq!(a.to_string(), "db:1/slice:2");
    }

    #[test]
    fn control_page_lives_in_slice_zero() {
        assert_eq!(PageId::CONTROL.slice(4096), SliceId(0));
    }
}
