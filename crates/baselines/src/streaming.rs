//! The rejected replica design: the master streams all log data to every
//! read replica through its own NIC (paper §6).
//!
//! "With write-intensive workloads generating 100 MB/s of log records and 15
//! read replicas, the master would need to send over 12 Gbps of data just to
//! read replicas." This simulator reproduces the bottleneck: the master's
//! outbound NIC is a serialization queue (`Fabric::charge_bandwidth`), so
//! replica lag grows with write rate × replica count, while Taurus replicas
//! read from the Log Stores and keep the master NIC out of the path.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use taurus_common::clock::ClockRef;
use taurus_common::lsn::LsnWatermark;
use taurus_common::{Lsn, NodeId};
use taurus_fabric::{Fabric, NodeKind};

/// One simulated log shipment.
struct Shipment {
    end_lsn: Lsn,
    /// When the master handed the bytes to the NIC (µs).
    sent_at_us: u64,
}

/// A master-streaming replication simulator: call
/// [`StreamingReplicaSim::master_write`] for every committed group; replicas
/// apply asynchronously and expose their visible LSN.
pub struct StreamingReplicaSim {
    fabric: Fabric,
    clock: ClockRef,
    master: NodeId,
    senders: Vec<Sender<Shipment>>,
    pub replicas: Vec<Arc<StreamingReplica>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// One streaming replica's receive side.
pub struct StreamingReplica {
    pub visible_lsn: LsnWatermark,
    /// Total µs of lag accumulated (sum over shipments), for averaging.
    pub lag_sum_us: std::sync::atomic::AtomicU64,
    pub shipments: std::sync::atomic::AtomicU64,
}

impl StreamingReplicaSim {
    /// `nic_bytes_per_sec` caps the master's outbound bandwidth; the paper's
    /// scenario uses ~1.25 GB/s (10 Gbps) against 15 replicas × 100 MB/s.
    pub fn new(fabric: Fabric, replica_count: usize) -> Self {
        let clock = fabric.clock.clone();
        let master = fabric.add_node(NodeKind::Compute);
        let mut senders = Vec::new();
        let mut replicas = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..replica_count {
            let (tx, rx): (Sender<Shipment>, Receiver<Shipment>) = unbounded();
            let replica = Arc::new(StreamingReplica {
                visible_lsn: LsnWatermark::new(Lsn::ZERO),
                lag_sum_us: std::sync::atomic::AtomicU64::new(0),
                shipments: std::sync::atomic::AtomicU64::new(0),
            });
            let r = Arc::clone(&replica);
            let clock2 = clock.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(shipment) = rx.recv() {
                    // Apply instantly on receipt; the lag is dominated by
                    // the NIC serialization delay the master already paid.
                    let now = clock2.now_us();
                    r.visible_lsn.advance(shipment.end_lsn);
                    r.lag_sum_us.fetch_add(
                        now.saturating_sub(shipment.sent_at_us),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    r.shipments
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }));
            senders.push(tx);
            replicas.push(replica);
        }
        StreamingReplicaSim {
            fabric,
            clock,
            master,
            senders,
            replicas,
            handles,
        }
    }

    /// The master commits a group of `bytes` log data ending at `end_lsn`
    /// and streams it to every replica through its NIC. Returns after the
    /// NIC accepted all copies (the master thread pays the serialization
    /// delay, exactly the bottleneck the paper describes).
    pub fn master_write(&self, end_lsn: Lsn, bytes: usize) {
        let sent_at_us = self.clock.now_us();
        for tx in &self.senders {
            // Each replica copy occupies the NIC separately.
            self.fabric.charge_bandwidth(self.master, bytes);
            let _ = tx.send(Shipment {
                end_lsn,
                sent_at_us,
            });
        }
    }

    /// Mean replica lag in µs across all shipments and replicas.
    pub fn mean_lag_us(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for r in &self.replicas {
            sum += r.lag_sum_us.load(std::sync::atomic::Ordering::Relaxed);
            n += r.shipments.load(std::sync::atomic::Ordering::Relaxed);
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Stops the receive threads.
    pub fn shutdown(mut self) {
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::clock::{Clock, ManualClock};
    use taurus_common::config::NetworkProfile;

    #[test]
    fn nic_serialization_charges_grow_with_replica_count() {
        let clock = ManualClock::shared();
        let profile = NetworkProfile {
            hop_us: 0,
            jitter_us: 0,
            master_nic_bytes_per_sec: 1_000_000, // 1 µs per byte
        };
        let fabric = Fabric::new(clock.clone(), profile, 1);
        let sim = StreamingReplicaSim::new(fabric, 4);
        let before = clock.now_us();
        sim.master_write(Lsn(10), 250);
        // 4 replicas × 250 bytes at 1 µs/byte = 1000 µs of master NIC time.
        assert_eq!(clock.now_us() - before, 1000);
        sim.shutdown();
    }

    #[test]
    fn replicas_eventually_see_the_lsn() {
        let fabric = Fabric::new(ManualClock::shared(), NetworkProfile::instant(), 1);
        let sim = StreamingReplicaSim::new(fabric, 2);
        sim.master_write(Lsn(42), 100);
        for _ in 0..200 {
            if sim.replicas.iter().all(|r| r.visible_lsn.get() == Lsn(42)) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert!(sim.replicas.iter().all(|r| r.visible_lsn.get() == Lsn(42)));
        sim.shutdown();
    }
}
