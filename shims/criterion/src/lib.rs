//! Offline shim for `criterion`.
//!
//! Implements the harness subset the workspace's benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{bench_function,
//! sample_size, finish}`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Reports median/mean per iteration from a fixed-budget timing loop —
//! no statistics engine, plots, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint; the shim runs one setup per measured routine call
/// regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            group: name.to_string(),
            samples: 50,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one("bench", name, 50, &mut f);
        self
    }
}

pub struct BenchmarkGroup {
    group: String,
    samples: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(5);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let group = self.group.clone();
        run_one(&group, name, self.samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: samples.max(5),
        per_iter_ns: Vec::new(),
    };
    f(&mut bencher);
    let mut ns = bencher.per_iter_ns;
    if ns.is_empty() {
        eprintln!("{group}/{name}: no samples");
        return;
    }
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    eprintln!(
        "{group}/{name}: median {} mean {} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        ns.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    per_iter_ns: Vec<u128>,
}

impl Bencher {
    /// Measures `routine` over batches, recording per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch size calibration: aim for ~1ms batches.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(10));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter_ns
                .push(start.elapsed().as_nanos() / batch as u128);
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup` (setup time
    /// excluded from measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(start.elapsed().as_nanos());
        }
    }
}

/// Mirrors criterion's macro: defines a function that runs each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors criterion's macro: `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher {
            samples: 5,
            per_iter_ns: Vec::new(),
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
        assert_eq!(b.per_iter_ns.len(), 5);
    }
}
