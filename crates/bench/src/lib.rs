//! # taurus-bench
//!
//! Shared harness for the binaries that regenerate every table and figure
//! of the paper's evaluation (see DESIGN.md §3 for the full index):
//!
//! | binary     | paper artifact |
//! |------------|----------------|
//! | `table1`   | Table 1 — storage unavailability per replication scheme |
//! | `fig7`     | Fig. 7 — Taurus vs Aurora-style quorum storage |
//! | `fig8`     | Fig. 8 — throughput relative to a monolithic local DB |
//! | `fig9`     | Fig. 9 — replica lag vs master write rate |
//! | `fig10`    | Fig. 10 — scaling with front-end instance size |
//! | `fig11`    | Fig. 11 — scaling with number of connections |
//! | `fig12`    | Fig. 12 — query latency |
//! | `ablations`| §7 design choices: LFU vs LRU, consolidation policies |
//!
//! Absolute numbers depend on the simulated device/network profiles
//! (DESIGN.md §6); the *shapes* — who wins, by roughly what factor, where
//! crossovers fall — are the reproduction targets.

use std::sync::Arc;

use taurus_common::clock::SystemClock;
use taurus_common::{Result, TaurusConfig};
use taurus_engine::TaurusDb;

/// Scale regimes for the dataset-size axis of the evaluation: the paper's
/// "1 GB" databases fit entirely in the front-end buffer pool, while the
/// "1 TB"/"100 GB" databases overwhelmingly do not (§8.1, Fig. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleRegime {
    /// Dataset fully cached by the engine buffer pool.
    Cached,
    /// Engine buffer pool covers only a few percent of the pages.
    StorageBound,
}

impl ScaleRegime {
    pub fn label(self) -> &'static str {
        match self {
            ScaleRegime::Cached => "cached (1GB-like)",
            ScaleRegime::StorageBound => "storage-bound (1TB-like)",
        }
    }

    /// (rows, engine pool pages) producing the regime at laptop scale.
    pub fn geometry(self) -> (u64, usize) {
        match self {
            // ~8k rows over ~hundreds of pages, pool holds thousands.
            ScaleRegime::Cached => (8_000, 4096),
            // ~40k rows over ~1300 pages; the pool covers ~30% of them,
            // like the paper's 256 GB pool against a 1 TB database.
            ScaleRegime::StorageBound => (40_000, 400),
        }
    }
}

/// A benchmark-grade config: realistic network/storage latency profiles,
/// generous buffers so flushes batch as in production.
pub fn bench_config(pool_pages: usize) -> TaurusConfig {
    TaurusConfig {
        pages_per_slice: 512,
        engine_buffer_pool_pages: pool_pages,
        log_buffer_bytes: 32 << 10,
        slice_buffer_bytes: 16 << 10,
        slice_flush_timeout_us: 1_000,
        // One log stream per driver connection: commit throughput on the
        // write benchmarks is bounded by parallel appends in flight, and
        // the driver runs 8 connections.
        log_streams: 8,
        ..TaurusConfig::default()
    }
}

/// Launches a Taurus cluster on the system clock with background
/// consolidation and housekeeping running.
pub fn launch_taurus(
    pool_pages: usize,
) -> Result<(Arc<TaurusDb>, taurus_engine::db::BackgroundGuard)> {
    let db = TaurusDb::launch(bench_config(pool_pages), 6, 6)?;
    let guard = db.start_background(500);
    Ok((db, guard))
}

/// Launches with an explicit config.
pub fn launch_taurus_with(
    cfg: TaurusConfig,
) -> Result<(Arc<TaurusDb>, taurus_engine::db::BackgroundGuard)> {
    let db = TaurusDb::launch(cfg, 6, 6)?;
    let guard = db.start_background(500);
    Ok((db, guard))
}

/// Shared clock handle for baselines in the same experiment.
pub fn bench_clock() -> taurus_common::clock::ClockRef {
    SystemClock::shared()
}

/// Prints a section header in harness output.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats a ratio as the paper does ("+50%", "-9%", "2.0x").
pub fn rel(ours: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".into();
    }
    let ratio = ours / baseline;
    if ratio >= 1.0 {
        format!("+{:.0}% ({ratio:.2}x)", (ratio - 1.0) * 100.0)
    } else {
        format!("-{:.0}% ({ratio:.2}x)", (1.0 - ratio) * 100.0)
    }
}

/// Transactions per connection used by the throughput benches; kept small
/// enough for CI-grade runtimes, large enough to average out noise.
pub fn txns_per_conn() -> u64 {
    std::env::var("TAURUS_BENCH_TXNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

/// One machine-readable datapoint value. Numbers are emitted bare; strings
/// are JSON-escaped.
#[derive(Clone, Debug)]
pub enum JsonValue {
    Str(String),
    U64(u64),
    F64(f64),
}

impl JsonValue {
    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:.4}"));
                } else {
                    out.push_str("null");
                }
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::U64(n)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::F64(x)
    }
}

/// Collects bench datapoints and writes them as a JSON array of flat
/// objects to `bench_results/<bench>.json` (hand-rolled writer — the
/// harness must stay dependency-free). Each `row` call is one object.
#[derive(Debug, Default)]
pub struct JsonReport {
    rows: Vec<Vec<(String, JsonValue)>>,
}

impl JsonReport {
    pub fn new() -> Self {
        JsonReport::default()
    }

    /// Appends one datapoint (an ordered list of key/value fields).
    pub fn row(&mut self, fields: Vec<(&str, JsonValue)>) {
        self.rows.push(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    /// Serializes all rows as a pretty-enough JSON array.
    pub fn render(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (k, v)) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                JsonValue::Str(k.clone()).write(&mut out);
                out.push_str(": ");
                v.write(&mut out);
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Writes `bench_results/<bench>.json`, creating the directory as
    /// needed. Prints the path so harness logs link the artifact.
    pub fn write(&self, bench: &str) -> std::io::Result<()> {
        let dir = std::path::Path::new("bench_results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{bench}.json"));
        std::fs::write(&path, self.render())?;
        println!("[{bench}] wrote {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_differ_in_coverage() {
        let (cached_rows, cached_pool) = ScaleRegime::Cached.geometry();
        let (big_rows, big_pool) = ScaleRegime::StorageBound.geometry();
        assert!(big_rows > cached_rows);
        assert!(big_pool < cached_pool);
    }

    #[test]
    fn rel_formatting() {
        assert!(rel(150.0, 100.0).starts_with("+50%"));
        assert!(rel(91.0, 100.0).starts_with("-9%"));
        assert_eq!(rel(1.0, 0.0), "n/a");
    }

    #[test]
    fn bench_config_is_valid() {
        bench_config(1024).validate().unwrap();
    }

    #[test]
    fn json_report_renders_flat_objects() {
        let mut r = JsonReport::new();
        r.row(vec![
            ("bench", "ndp".into()),
            ("rows", 42u64.into()),
            ("ratio", 5.25f64.into()),
        ]);
        r.row(vec![("note", "a \"quoted\"\nline".into())]);
        let s = r.render();
        assert!(s.starts_with("[\n"));
        assert!(s.contains("\"bench\": \"ndp\", \"rows\": 42, \"ratio\": 5.2500"));
        assert!(s.contains("\\\"quoted\\\"\\n"));
        assert!(s.trim_end().ends_with(']'));
    }

    #[test]
    fn json_report_handles_non_finite() {
        let mut r = JsonReport::new();
        r.row(vec![("x", f64::NAN.into())]);
        assert!(r.render().contains("\"x\": null"));
    }
}
