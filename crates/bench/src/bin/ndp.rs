//! **NDP** — near-data processing: versioned scan/aggregate pushdown to the
//! Page Stores (the NDP follow-on paper; see PAPERS.md).
//!
//! A selective scan over a multi-slice table runs two ways at the same
//! snapshot LSN:
//!
//! * **fetch-and-filter** — the classic path: every page crosses the fabric
//!   through `ReadPage` and the master evaluates the predicate locally;
//! * **pushdown** — the SAL fans one `ScanSlice` call per slice out to the
//!   Page Stores, which materialize pages *at the snapshot LSN*, evaluate
//!   the same shared operator next to the data, and return only matching
//!   rows.
//!
//! Both must return byte-identical results; pushdown should move an order
//! of magnitude fewer bytes master-ward. `TAURUS_NDP_ASSERT=1` turns the
//! ≥5x bytes-moved gate and the identical-results check into hard failures
//! for CI.

// Harness code: aborting on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use taurus_baselines::TaurusExecutor;
use taurus_bench::{bench_config, header, launch_taurus_with, rel, txns_per_conn, JsonReport};
use taurus_common::scan::Aggregate;
use taurus_common::PAGE_SIZE;
use taurus_workload::{driver::load_initial, run_workload, ScanHeavyWorkload};

fn main() {
    let assert_mode = std::env::var("TAURUS_NDP_ASSERT").as_deref() == Ok("1");
    println!("NDP — scan/aggregate pushdown vs fetch-and-filter");
    println!("shape target: identical results, >=5x fewer bytes moved master-ward\n");

    // Small slices so the table spans many of them: the planner's fan-out
    // and per-slice routing are the point of the exercise.
    let mut cfg = bench_config(4096);
    cfg.pages_per_slice = 64;
    let (db, guard) = launch_taurus_with(cfg).unwrap();
    let exec = TaurusExecutor::new(db);

    let rows = std::env::var("TAURUS_NDP_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let w = ScanHeavyWorkload::new(rows, 48);
    load_initial(&exec, &w).unwrap();

    header("mixed scan/write driver phase (Op::Scan traffic)");
    let report = run_workload(&exec, &w, 4, txns_per_conn().min(60), 21);
    println!("  {}", report.row());

    let master = exec.db.master();
    let sal = &master.sal;
    // Quiesce so both paths observe the same final state.
    sal.flush_all_slices();
    for _ in 0..300 {
        master.maintain();
        if sal.cv_lsn() == sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    master.create_snapshot("ndp");
    let slices = exec.db.pages.slices().len();
    println!("  table: {rows} rows across {slices} slices");

    let req = w.selective_request(7);

    header("fetch-and-filter (ReadPage every page, evaluate on master)");
    let before = sal.stats.snapshot();
    let t0 = std::time::Instant::now(); // taurus-lint: allow(direct-clock) -- bench harness timing
    let fetched = master.snapshot_scan("ndp", b"", usize::MAX).unwrap();
    let fetch_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let after = sal.stats.snapshot();
    let matching: Vec<Vec<u8>> = fetched
        .iter()
        .filter(|(k, v)| req.matches(k, v))
        .map(|(k, _)| k.clone())
        .collect();
    let fetch_pages = after.page_reads - before.page_reads;
    let fetch_bytes = fetch_pages * PAGE_SIZE as u64;
    let fetch_rows_sec = fetched.len() as f64 / fetch_secs;
    println!(
        "  scanned {} rows, {} matched",
        fetched.len(),
        matching.len()
    );
    println!("  pages fetched: {fetch_pages} ({fetch_bytes} bytes across the fabric)");
    println!("  rows/sec: {fetch_rows_sec:.0}");

    header("pushdown (ScanSlice per slice, evaluate on Page Stores)");
    let before = sal.ndp_stats.snapshot();
    let t0 = std::time::Instant::now(); // taurus-lint: allow(direct-clock) -- bench harness timing
    let pushed = master.snapshot_scan_pushdown("ndp", &req).unwrap();
    let push_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let after = sal.ndp_stats.snapshot();
    let push_bytes = (after.bytes_returned - before.bytes_returned)
        + (after.fallback_bytes - before.fallback_bytes);
    let push_rows_sec = (after.rows_scanned - before.rows_scanned) as f64 / push_secs;
    let fallbacks = after.fallbacks - before.fallbacks;
    println!(
        "  scanned {} rows remotely, {} matched, {} slices pushed down, {} fell back",
        after.rows_scanned - before.rows_scanned,
        pushed.rows.len(),
        pushed.pushdown_slices,
        pushed.fallback_slices,
    );
    println!(
        "  bytes moved master-ward: {push_bytes} (saved {} vs fetch)",
        after.bytes_saved_vs_fetch()
    );
    println!("  rows/sec: {push_rows_sec:.0}   fallback slice scans: {fallbacks}");
    println!("  ndp stats: {after}");

    header("verdict");
    let identical = pushed.rows.iter().map(|(k, _)| k).eq(matching.iter());
    let ratio = fetch_bytes as f64 / (push_bytes.max(1)) as f64;
    println!("  identical results: {identical}");
    println!(
        "  bytes moved, fetch vs pushdown: {fetch_bytes} vs {push_bytes} — {}",
        rel(fetch_bytes as f64, push_bytes as f64)
    );

    // Aggregate-only pushdown: COUNT ships back a single number per slice.
    let count = master
        .snapshot_scan_pushdown("ndp", &req.clone().with_aggregate(Aggregate::Count))
        .unwrap();
    println!(
        "  COUNT pushdown: {} (expected {})",
        count.agg.count,
        matching.len()
    );

    let mut json = JsonReport::new();
    json.row(vec![
        ("bench", "ndp".into()),
        ("rows", rows.into()),
        ("slices", (slices as u64).into()),
        ("matched", (matching.len() as u64).into()),
        ("fetch_bytes", fetch_bytes.into()),
        ("pushdown_bytes", push_bytes.into()),
        ("bytes_ratio", ratio.into()),
        ("fetch_rows_per_sec", fetch_rows_sec.into()),
        ("pushdown_rows_per_sec", push_rows_sec.into()),
        ("fallback_slice_scans", fallbacks.into()),
        ("identical_results", u64::from(identical).into()),
    ]);
    if let Err(e) = json.write("ndp") {
        eprintln!("ndp: could not write bench_results: {e}");
    }
    drop(guard);

    if assert_mode {
        assert!(identical, "pushdown and fetch-and-filter disagree");
        assert_eq!(
            count.agg.count,
            matching.len() as u64,
            "COUNT pushdown wrong"
        );
        assert!(
            ratio >= 5.0,
            "pushdown moved only {ratio:.1}x fewer bytes (gate: >=5x): \
             fetch {fetch_bytes} vs pushdown {push_bytes}"
        );
        println!("\nTAURUS_NDP_ASSERT: all gates passed ({ratio:.1}x fewer bytes).");
    }
}
