//! The Log Store cluster manager.
//!
//! Owns the server registry and the authoritative *PLog directory* mapping
//! each PLog to the three servers holding its replicas. Provides the
//! replicated operations the SAL uses:
//!
//! * [`LogStoreCluster::create_plog`] — pick three healthy servers
//!   (paper §3.3: "the cluster manager chooses three Log Store servers");
//! * [`LogStoreCluster::append`] — synchronous 3/3 write with the replica
//!   writes issued in parallel (ack latency = max of three, paper §3.2):
//!   acknowledged only when **all** replicas report success; any failure
//!   seals the PLog so the writer allocates a fresh one elsewhere (writes
//!   are never retried to the old location — paper §3.3);
//! * [`LogStoreCluster::read_from`] — succeeds as long as *one* replica is
//!   alive;
//! * [`LogStoreCluster::rereplicate_from`] — long-term failure repair:
//!   re-creates the lost replicas on healthy nodes from a survivor
//!   (paper §5.1).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use taurus_common::{DbId, NodeId, PLogId, Result, TaurusError};
use taurus_fabric::{Fabric, NodeKind, StorageDevice};

use crate::server::LogStoreServer;

/// Directory entry for one PLog: its replica placement and the number of
/// bytes whose 3/3 replication has been acknowledged. Readers are served
/// only up to `committed_len`, so a half-replicated append that failed (and
/// sealed the PLog) can never become visible — the paper's "writes are
/// acknowledged only when all three Log Store replicas report a successful
/// write" invariant, enforced on the read side.
#[derive(Clone, Debug)]
struct PLogMeta {
    nodes: Vec<NodeId>,
    committed_len: u64,
    /// Next per-plog append sequence number to hand out ([`reserve_seq`]).
    next_seq: u64,
    /// First sequence number not yet covered by `committed_len`.
    committed_seq: u64,
    /// Acknowledged appends whose predecessors are still in flight:
    /// seq → byte length. `committed_len` only advances over the contiguous
    /// prefix, so it is monotone and never counts a write that could still
    /// fail ahead of it.
    acked: std::collections::BTreeMap<u64, u64>,
}

impl PLogMeta {
    fn new(nodes: Vec<NodeId>) -> Self {
        PLogMeta {
            nodes,
            committed_len: 0,
            next_seq: 0,
            committed_seq: 0,
            acked: std::collections::BTreeMap::new(),
        }
    }
}

/// Cluster manager for the Log Store tier.
#[derive(Clone)]
pub struct LogStoreCluster {
    /// Shared cluster fabric (public so orchestration and tests can inject
    /// failures).
    pub fabric: Fabric,
    servers: Arc<RwLock<HashMap<NodeId, Arc<LogStoreServer>>>>,
    directory: Arc<RwLock<HashMap<PLogId, PLogMeta>>>,
    /// Control-plane registry: which metadata PLog describes each of a
    /// database's log streams (paper: metadata PLog discovery is a
    /// control-plane lookup), keyed by `(db, stream index)`. Stream 0 is the
    /// classic single-stream log; multi-stream parallel logging registers
    /// one entry per stream.
    meta_registry: Arc<RwLock<HashMap<(DbId, u32), PLogId>>>,
    cache_bytes: usize,
    replicas: usize,
}

impl LogStoreCluster {
    pub fn new(fabric: Fabric, replicas: usize, cache_bytes: usize) -> Self {
        LogStoreCluster {
            fabric,
            servers: Arc::new(RwLock::new(HashMap::new())),
            directory: Arc::new(RwLock::new(HashMap::new())),
            meta_registry: Arc::new(RwLock::new(HashMap::new())),
            cache_bytes,
            replicas,
        }
    }

    /// Spawns a new Log Store server node with its own device.
    pub fn spawn_server(&self, profile: taurus_common::config::StorageProfile) -> NodeId {
        let id = self.fabric.add_node(NodeKind::LogStore);
        let device = StorageDevice::in_memory(self.fabric.clock.clone(), profile);
        self.servers
            .write()
            .insert(id, LogStoreServer::new(device, self.cache_bytes));
        id
    }

    /// Spawns `n` servers.
    pub fn spawn_servers(
        &self,
        n: usize,
        profile: taurus_common::config::StorageProfile,
    ) -> Vec<NodeId> {
        (0..n).map(|_| self.spawn_server(profile)).collect()
    }

    fn server(&self, node: NodeId) -> Result<Arc<LogStoreServer>> {
        self.servers
            .read()
            .get(&node)
            .cloned()
            .ok_or(TaurusError::NodeUnavailable(node))
    }

    /// Direct handle to a server, for tests that need to inspect node state.
    pub fn server_handle(&self, node: NodeId) -> Option<Arc<LogStoreServer>> {
        self.servers.read().get(&node).cloned()
    }

    /// Current replica placement of a PLog.
    pub fn replicas_of(&self, id: PLogId) -> Vec<NodeId> {
        self.directory
            .read()
            .get(&id)
            .map(|m| m.nodes.clone())
            .unwrap_or_default()
    }

    /// Acknowledged (3/3-replicated) length of a PLog.
    pub fn committed_len(&self, id: PLogId) -> u64 {
        self.directory
            .read()
            .get(&id)
            .map(|m| m.committed_len)
            .unwrap_or(0)
    }

    /// Creates a PLog replicated on `self.replicas` healthy servers chosen by
    /// the cluster manager.
    pub fn create_plog(&self, id: PLogId, from: NodeId) -> Result<Vec<NodeId>> {
        let nodes = self
            .fabric
            .pick_nodes(NodeKind::LogStore, self.replicas, &[])?;
        for &n in &nodes {
            let server = self.server(n)?;
            self.fabric.call(from, n, || server.create_plog(id))?;
        }
        self.directory
            .write()
            .insert(id, PLogMeta::new(nodes.clone()));
        Ok(nodes)
    }

    /// Reserves the next append sequence number of a PLog. Sequences order
    /// concurrent appends: each replica applies them in sequence order (see
    /// [`LogStoreServer::append_at`]) so all three replicas stay
    /// byte-identical no matter how the parallel fan-outs interleave.
    pub fn reserve_seq(&self, id: PLogId) -> Result<u64> {
        let mut dir = self.directory.write();
        let meta = dir.get_mut(&id).ok_or(TaurusError::PLogNotFound(id))?;
        let seq = meta.next_seq;
        meta.next_seq += 1;
        Ok(seq)
    }

    /// First sequence number not yet covered by the committed length.
    pub fn committed_seq(&self, id: PLogId) -> u64 {
        self.directory
            .read()
            .get(&id)
            .map(|m| m.committed_seq)
            .unwrap_or(0)
    }

    /// Synchronously replicated append: all replicas must acknowledge.
    /// Convenience wrapper for single-writer PLogs (metadata snapshots,
    /// tests): reserves the next sequence number and appends at it.
    pub fn append(&self, id: PLogId, from: NodeId, data: Bytes) -> Result<()> {
        let seq = self.reserve_seq(id)?;
        self.append_at(id, from, seq, data)
    }

    /// Synchronously replicated append at a reserved sequence number: the
    /// three replica writes are issued **concurrently** (scoped threads over
    /// [`Fabric::call`]) and the append is acknowledged when all of them
    /// report success, so ack latency is the max of the three writes rather
    /// than their sum (paper §3.2).
    ///
    /// On any failure the PLog is sealed on every reachable replica and
    /// `PLogSealed` is returned — the writer must allocate a new PLog and
    /// write there instead (never retry to the old location). On success the
    /// committed length advances over the contiguous acknowledged sequence
    /// prefix only: an append whose predecessor is still in flight stays
    /// invisible to readers until that predecessor also acks, and if the
    /// predecessor fails the gap (and everything behind it) stays
    /// unreachable forever.
    pub fn append_at(&self, id: PLogId, from: NodeId, seq: u64, data: Bytes) -> Result<()> {
        let nodes = self.replicas_of(id);
        if nodes.is_empty() {
            return Err(TaurusError::PLogNotFound(id));
        }
        let mut servers = Vec::with_capacity(nodes.len());
        for &n in &nodes {
            match self.server(n) {
                Ok(s) => servers.push((n, s)),
                Err(_) => {
                    self.seal(id, from);
                    return Err(TaurusError::PLogSealed(id));
                }
            }
        }
        let calls: Vec<_> = servers
            .into_iter()
            .map(|(n, server)| {
                let data = data.clone();
                let f: Box<dyn FnOnce() -> Result<()> + Send> =
                    Box::new(move || server.append_at(id, seq, data));
                (n, f)
            })
            .collect();
        let results = self.fabric.call_all(from, calls);
        if results.into_iter().all(|r| matches!(r, Ok(Ok(())))) {
            let mut dir = self.directory.write();
            if let Some(meta) = dir.get_mut(&id) {
                meta.acked.insert(seq, data.len() as u64);
                while let Some(len) = meta.acked.remove(&meta.committed_seq) {
                    meta.committed_len += len;
                    meta.committed_seq += 1;
                }
            }
            return Ok(());
        }
        // Partial failure: seal everywhere reachable so the failed write can
        // never be half-visible, then tell the writer to move on.
        self.seal(id, from);
        Err(TaurusError::PLogSealed(id))
    }

    /// Whether a PLog is sealed, as recorded server-side. Best effort: asks
    /// replicas in order and takes the first answer; an unreachable cluster
    /// reads as "not sealed" (callers treat the answer as advisory — e.g. a
    /// tail reader simply retries on its next poll).
    pub fn is_sealed(&self, id: PLogId, from: NodeId) -> bool {
        for n in self.replicas_of(id) {
            let Ok(server) = self.server(n) else { continue };
            if let Ok(Ok(sealed)) = self.fabric.call(from, n, || server.is_sealed(id)) {
                return sealed;
            }
        }
        false
    }

    /// Whether a PLog has reserved sequence numbers that can never commit
    /// (a failed append left a hole in the acknowledged prefix, or a
    /// reservation was abandoned). Such a PLog is permanently dead for
    /// writing: later appends would succeed on the replicas but stay
    /// invisible behind the gap forever.
    pub fn has_sequence_gap(&self, id: PLogId) -> bool {
        self.directory
            .read()
            .get(&id)
            .map(|m| m.next_seq != m.committed_seq)
            .unwrap_or(false)
    }

    /// Seals a PLog on every reachable replica (best effort).
    pub fn seal(&self, id: PLogId, from: NodeId) {
        for n in self.replicas_of(id) {
            if let Ok(server) = self.server(n) {
                let _ = self.fabric.call(from, n, || server.seal(id));
            }
        }
    }

    /// Reads everything from `offset` onward; succeeds if at least one
    /// replica is reachable (paper §3.3: "reads from the Log Store will
    /// succeed as long as there is at least one PLog replica available").
    pub fn read_from(&self, id: PLogId, from: NodeId, offset: u64) -> Result<Bytes> {
        let (nodes, committed) = {
            let dir = self.directory.read();
            match dir.get(&id) {
                Some(m) => (m.nodes.clone(), m.committed_len),
                None => return Err(TaurusError::PLogNotFound(id)),
            }
        };
        if offset >= committed {
            return Ok(Bytes::new());
        }
        let mut last_err = TaurusError::PLogNotFound(id);
        for n in nodes {
            let Ok(server) = self.server(n) else { continue };
            match self.fabric.call(from, n, || server.read_from(id, offset)) {
                Ok(Ok(data)) => {
                    // Never expose bytes past the acknowledged length: a
                    // replica may carry the tail of a failed (unacked) write.
                    let visible = (committed - offset) as usize;
                    if data.len() >= visible {
                        return Ok(data.slice(0..visible));
                    }
                    // Replica is missing acknowledged data (should not
                    // happen); fall through to the next replica.
                    last_err = TaurusError::Codec("replica shorter than committed length");
                }
                Ok(Err(e)) | Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Deletes a PLog from all reachable replicas and the directory (log
    /// truncation).
    pub fn delete_plog(&self, id: PLogId, from: NodeId) {
        for n in self.replicas_of(id) {
            if let Ok(server) = self.server(n) {
                let _ = self.fabric.call(from, n, || server.delete_plog(id));
            }
        }
        self.directory.write().remove(&id);
    }

    /// Long-term failure repair: for every PLog with a replica on `failed`,
    /// copy the data from a surviving replica to a freshly chosen healthy
    /// server and update the directory. Returns the number of PLog replicas
    /// re-created.
    ///
    /// Only the **committed** prefix is copied: a survivor may still carry
    /// the tail of a failed (never-acknowledged) 3/3 append, and installing
    /// those bytes on the replacement would resurrect a write the client was
    /// told did not happen. The same unacknowledged tail is clipped off the
    /// survivors (best effort), so after repair all three replicas are
    /// byte-identical.
    pub fn rereplicate_from(&self, failed: NodeId, from: NodeId) -> Result<usize> {
        let affected: Vec<(PLogId, Vec<NodeId>, u64, u64)> = self
            .directory
            .read()
            .iter()
            .filter(|(_, meta)| meta.nodes.contains(&failed))
            .map(|(id, meta)| {
                (
                    *id,
                    meta.nodes.clone(),
                    meta.committed_len,
                    meta.committed_seq,
                )
            })
            .collect();
        let mut repaired = 0usize;
        for (id, nodes, committed_len, committed_seq) in affected {
            let survivors: Vec<NodeId> = nodes.iter().copied().filter(|&n| n != failed).collect();
            // Read the committed prefix from any survivor that has all of it.
            let mut content: Option<(Bytes, bool)> = None;
            for &s in &survivors {
                let Ok(server) = self.server(s) else { continue };
                let read = self.fabric.call(from, s, || -> Result<(Bytes, bool)> {
                    Ok((server.read_from(id, 0)?, server.is_sealed(id)?))
                });
                if let Ok(Ok((data, sealed))) = read {
                    if (data.len() as u64) < committed_len {
                        // Missing acknowledged bytes (should not happen);
                        // try the next survivor.
                        continue;
                    }
                    content = Some((data.slice(0..committed_len as usize), sealed));
                    break;
                }
            }
            let Some((data, sealed)) = content else {
                // No survivor readable right now; the plog stays
                // under-replicated until a later repair pass.
                continue;
            };
            let new_node = self
                .fabric
                .pick_nodes(NodeKind::LogStore, 1, &nodes)?
                .pop()
                .ok_or_else(|| TaurusError::Internal("pick_nodes(1) returned no node".into()))?;
            let server = self.server(new_node)?;
            let install = data.clone();
            self.fabric.call(from, new_node, || {
                server.install_replica(id, install, committed_seq, sealed)
            })??;
            // Clip the unacknowledged tail off the survivors so all replicas
            // are byte-identical after repair. Best effort: an unreachable
            // survivor keeps its (invisible, read-side-capped) tail.
            for &s in &survivors {
                let Ok(server) = self.server(s) else { continue };
                let _ = self.fabric.call(from, s, || {
                    server.truncate_to(id, committed_len, committed_seq)
                });
            }
            let mut dir = self.directory.write();
            if let Some(meta) = dir.get_mut(&id) {
                if let Some(slot) = meta.nodes.iter_mut().find(|n| **n == failed) {
                    *slot = new_node;
                }
                // Sequences acked ahead of a failed predecessor can never
                // commit (the plog is sealed); drop them so directory state
                // matches the repaired replicas.
                meta.acked.clear();
            }
            repaired += 1;
        }
        Ok(repaired)
    }

    /// Registers the metadata PLog for a database's stream 0 (single-stream
    /// wrapper around [`LogStoreCluster::set_meta_plog_stream`]).
    pub fn set_meta_plog(&self, db: DbId, id: PLogId) {
        self.set_meta_plog_stream(db, 0, id);
    }

    /// Looks up the metadata PLog of a database's stream 0.
    pub fn meta_plog(&self, db: DbId) -> Option<PLogId> {
        self.meta_plog_stream(db, 0)
    }

    /// Registers the metadata PLog for one log stream of a database.
    pub fn set_meta_plog_stream(&self, db: DbId, stream: u32, id: PLogId) {
        self.meta_registry.write().insert((db, stream), id);
    }

    /// Looks up the metadata PLog of one log stream of a database.
    pub fn meta_plog_stream(&self, db: DbId, stream: u32) -> Option<PLogId> {
        self.meta_registry.read().get(&(db, stream)).copied()
    }

    /// Recovery-only: retracts a PLog's acknowledged length to `len` (with
    /// `seq` appends committed), physically truncating every reachable
    /// replica. Used to discard *orphaned* flush frames after a crash — spans
    /// that a stream made durable while an earlier span on a sibling stream
    /// did not, leaving a log hole. Those bytes were 3/3-acked at the PLog
    /// level but their transactions were never acknowledged (`durable_lsn`
    /// never covered them), so dropping them is the only consistent choice.
    ///
    /// The directory is the source of truth for visibility (`read_from` caps
    /// at `committed_len`), so an unreachable replica that keeps the orphan
    /// bytes can never serve them.
    pub fn truncate_plog_to(&self, id: PLogId, from: NodeId, len: u64, seq: u64) -> Result<()> {
        {
            let mut dir = self.directory.write();
            let meta = dir.get_mut(&id).ok_or(TaurusError::PLogNotFound(id))?;
            if len > meta.committed_len {
                return Err(TaurusError::Internal(
                    "truncate_plog_to beyond committed length".into(),
                ));
            }
            meta.committed_len = len;
            meta.committed_seq = seq;
            meta.next_seq = seq;
            meta.acked.clear();
        }
        for n in self.replicas_of(id) {
            if let Ok(server) = self.server(n) {
                let _ = self
                    .fabric
                    .call(from, n, || server.truncate_to(id, len, seq));
            }
        }
        Ok(())
    }

    /// Total PLogs tracked in the directory.
    pub fn plog_count(&self) -> usize {
        self.directory.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::clock::ManualClock;
    use taurus_common::config::{NetworkProfile, StorageProfile};
    use taurus_common::DbId;

    fn cluster(n: usize) -> (LogStoreCluster, Vec<NodeId>, NodeId) {
        let clock = ManualClock::shared();
        let fabric = Fabric::new(clock, NetworkProfile::instant(), 99);
        let compute = fabric.add_node(NodeKind::Compute);
        let cluster = LogStoreCluster::new(fabric, 3, 1 << 20);
        let nodes = cluster.spawn_servers(n, StorageProfile::instant());
        (cluster, nodes, compute)
    }

    fn id(seq: u64) -> PLogId {
        PLogId::new(DbId(1), seq, 0)
    }

    #[test]
    fn create_append_read() {
        let (c, _, me) = cluster(5);
        let nodes = c.create_plog(id(1), me).unwrap();
        assert_eq!(nodes.len(), 3);
        c.append(id(1), me, Bytes::from_static(b"hello")).unwrap();
        c.append(id(1), me, Bytes::from_static(b" world")).unwrap();
        assert_eq!(
            c.read_from(id(1), me, 0).unwrap(),
            Bytes::from_static(b"hello world")
        );
    }

    #[test]
    fn all_replicas_hold_identical_content() {
        let (c, _, me) = cluster(4);
        c.create_plog(id(1), me).unwrap();
        c.append(id(1), me, Bytes::from_static(b"abc")).unwrap();
        for n in c.replicas_of(id(1)) {
            let s = c.server_handle(n).unwrap();
            assert_eq!(s.read_from(id(1), 0).unwrap(), Bytes::from_static(b"abc"));
        }
    }

    #[test]
    fn append_with_down_replica_seals_the_plog() {
        let (c, _, me) = cluster(6);
        c.create_plog(id(1), me).unwrap();
        c.append(id(1), me, Bytes::from_static(b"ok")).unwrap();
        let victim = c.replicas_of(id(1))[0];
        // Take one replica down: the 3/3 write must fail and seal.
        let fabric = c.fabric.clone();
        fabric.set_down(victim);
        assert!(matches!(
            c.append(id(1), me, Bytes::from_static(b"fails")),
            Err(TaurusError::PLogSealed(_))
        ));
        // Survivors are sealed; even after the victim recovers, appends fail.
        fabric.set_up(victim);
        assert!(c
            .append(id(1), me, Bytes::from_static(b"still fails"))
            .is_err());
        // Reads still work and show only the acknowledged data.
        assert_eq!(
            c.read_from(id(1), me, 0).unwrap(),
            Bytes::from_static(b"ok")
        );
    }

    #[test]
    fn reads_survive_two_replica_failures() {
        let (c, _, me) = cluster(5);
        c.create_plog(id(1), me).unwrap();
        c.append(id(1), me, Bytes::from_static(b"durable")).unwrap();
        let replicas = c.replicas_of(id(1));
        c.fabric.set_down(replicas[0]);
        c.fabric.set_down(replicas[1]);
        assert_eq!(
            c.read_from(id(1), me, 0).unwrap(),
            Bytes::from_static(b"durable")
        );
        // Third one down: reads fail.
        c.fabric.set_down(replicas[2]);
        assert!(c.read_from(id(1), me, 0).is_err());
    }

    #[test]
    fn delete_plog_removes_everywhere() {
        let (c, _, me) = cluster(4);
        c.create_plog(id(1), me).unwrap();
        c.append(id(1), me, Bytes::from_static(b"x")).unwrap();
        let replicas = c.replicas_of(id(1));
        c.delete_plog(id(1), me);
        assert_eq!(c.plog_count(), 0);
        for n in replicas {
            assert_eq!(c.server_handle(n).unwrap().plog_count(), 0);
        }
    }

    #[test]
    fn rereplication_restores_replica_count_and_content() {
        let (c, _, me) = cluster(6);
        c.create_plog(id(1), me).unwrap();
        c.append(id(1), me, Bytes::from_static(b"precious"))
            .unwrap();
        c.seal(id(1), me);
        let old = c.replicas_of(id(1));
        let failed = old[1];
        c.fabric.set_down(failed);
        c.fabric.decommission(failed);
        let repaired = c.rereplicate_from(failed, me).unwrap();
        assert_eq!(repaired, 1);
        let new = c.replicas_of(id(1));
        assert_eq!(new.len(), 3);
        assert!(!new.contains(&failed));
        // The replacement holds the full content and the sealed flag.
        let added: Vec<_> = new.iter().filter(|n| !old.contains(n)).collect();
        assert_eq!(added.len(), 1);
        let s = c.server_handle(*added[0]).unwrap();
        assert_eq!(
            s.read_from(id(1), 0).unwrap(),
            Bytes::from_static(b"precious")
        );
        assert!(s.is_sealed(id(1)).unwrap());
    }

    #[test]
    fn committed_len_advances_only_over_contiguous_sequences() {
        let (c, _, me) = cluster(4);
        c.create_plog(id(1), me).unwrap();
        let s0 = c.reserve_seq(id(1)).unwrap();
        let s1 = c.reserve_seq(id(1)).unwrap();
        // The later sequence acks first: nothing is committed yet, because
        // its predecessor could still fail.
        c.append_at(id(1), me, s1, Bytes::from_static(b"second"))
            .unwrap();
        assert_eq!(c.committed_len(id(1)), 0);
        assert_eq!(c.read_from(id(1), me, 0).unwrap(), Bytes::new());
        // The predecessor lands: the whole contiguous prefix commits.
        c.append_at(id(1), me, s0, Bytes::from_static(b"first!"))
            .unwrap();
        assert_eq!(c.committed_len(id(1)), 12);
        assert_eq!(
            c.read_from(id(1), me, 0).unwrap(),
            Bytes::from_static(b"first!second")
        );
    }

    #[test]
    fn failed_predecessor_keeps_later_acks_invisible_forever() {
        let (c, _, me) = cluster(6);
        c.create_plog(id(1), me).unwrap();
        let s0 = c.reserve_seq(id(1)).unwrap();
        let s1 = c.reserve_seq(id(1)).unwrap();
        c.append_at(id(1), me, s1, Bytes::from_static(b"orphan"))
            .unwrap();
        let victim = c.replicas_of(id(1))[0];
        c.fabric.set_down(victim);
        assert!(matches!(
            c.append_at(id(1), me, s0, Bytes::from_static(b"lost")),
            Err(TaurusError::PLogSealed(_))
        ));
        // seq1's bytes are durable on every replica but can never become
        // readable: the gap at seq0 will never fill (the plog is sealed).
        assert_eq!(c.committed_len(id(1)), 0);
        assert_eq!(c.read_from(id(1), me, 0).unwrap(), Bytes::new());
    }

    #[test]
    fn rereplication_does_not_resurrect_unacknowledged_tail() {
        let (c, _, me) = cluster(6);
        c.create_plog(id(1), me).unwrap();
        c.append(id(1), me, Bytes::from_static(b"acked")).unwrap();
        let victim = c.replicas_of(id(1))[0];
        // The victim dies; the failed 3/3 append still lands its bytes on
        // the two survivors before sealing.
        c.fabric.set_down(victim);
        assert!(c
            .append(id(1), me, Bytes::from_static(b"never-acked"))
            .is_err());
        for &n in &c.replicas_of(id(1)) {
            if n != victim {
                let s = c.server_handle(n).unwrap();
                assert_eq!(
                    s.read_from(id(1), 0).unwrap(),
                    Bytes::from_static(b"ackednever-acked"),
                    "survivors carry the unacknowledged tail before repair"
                );
            }
        }
        c.fabric.decommission(victim);
        assert_eq!(c.rereplicate_from(victim, me).unwrap(), 1);
        // After repair all three replicas hold exactly the committed bytes:
        // the replacement was installed from the committed prefix and the
        // survivors' unacknowledged tails were clipped.
        let replicas = c.replicas_of(id(1));
        assert_eq!(replicas.len(), 3);
        assert!(!replicas.contains(&victim));
        for n in replicas {
            let s = c.server_handle(n).unwrap();
            assert_eq!(
                s.read_from(id(1), 0).unwrap(),
                Bytes::from_static(b"acked"),
                "replica on {n} diverges after repair"
            );
            assert!(s.is_sealed(id(1)).unwrap());
        }
        assert_eq!(
            c.read_from(id(1), me, 0).unwrap(),
            Bytes::from_static(b"acked")
        );
    }

    #[test]
    fn writes_keep_succeeding_while_three_healthy_nodes_exist() {
        // The availability claim: a failed write seals and moves on; as long
        // as any 3 healthy servers exist, a *new* PLog write succeeds.
        let (c, nodes, me) = cluster(10);
        c.create_plog(id(1), me).unwrap();
        // Kill 7 of 10 nodes.
        for &n in &nodes[..7] {
            c.fabric.set_down(n);
        }
        // The old plog may or may not be writable; a fresh plog must be.
        let fresh = id(2);
        c.create_plog(fresh, me).unwrap();
        c.append(fresh, me, Bytes::from_static(b"still writable"))
            .unwrap();
        // With only 2 healthy nodes, creation fails.
        c.fabric.set_down(nodes[7]);
        assert!(c.create_plog(id(3), me).is_err());
    }
}
