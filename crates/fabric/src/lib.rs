//! # taurus-fabric
//!
//! The simulated cluster substrate that stands in for a cloud datacenter
//! (substitution documented in DESIGN.md §6). It provides:
//!
//! * a registry of node ids with kinds (Log Store, Page Store, compute);
//! * synchronous RPC between nodes through [`Fabric::call`], which charges
//!   configurable per-hop network latency and refuses calls to nodes that
//!   are marked down;
//! * failure injection: nodes can be taken down/up at any time, and a
//!   [`FailureDetector`] classifies outages as short-term or long-term
//!   exactly as the paper's recovery service does (§5: short-term failures
//!   are waited out; after ~15 minutes a failure is long-term and data is
//!   re-replicated);
//! * an outbound-bandwidth model ([`Fabric::charge_bandwidth`]) used to
//!   reproduce the master-NIC bottleneck of the streaming-replica baseline
//!   (paper §6);
//! * a [`StorageDevice`] cost model charging the append-vs-random-write
//!   latency gap the paper relies on (§7, citing F2FS).
//!
//! Determinism: all randomness is seeded, and all time flows through a
//! `Clock`, so failure drills replay identically with a `ManualClock`.

pub mod detector;
pub mod device;
pub mod dispatch;
pub mod net;

pub use detector::{FailureDetector, FailureEvent};
pub use device::StorageDevice;
pub use dispatch::{DispatchSnapshot, DispatchStats};
pub use net::{Fabric, NodeKind, NodeStatus};
