//! Differential tests for near-data scan pushdown: for any workload and any
//! `ScanRequest`, pushing the scan to the Page Stores (one `ScanSlice` per
//! slice, pages materialized at the snapshot LSN next to the data) must
//! return exactly what the engine computes locally over a model of the
//! table — including while a concurrent writer keeps committing and after
//! one Page Store replica is killed mid-run.

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use taurus::common::clock::ManualClock;
use taurus::common::scan::{AggState, Aggregate, CmpOp, Field, Operand, Projection, ScanRequest};
use taurus::core::TableScan;
use taurus::engine::MasterEngine;
use taurus::prelude::*;

fn launch(seed: u64) -> Arc<TaurusDb> {
    let cfg = TaurusConfig {
        pages_per_slice: 8, // spread even small tables across several slices
        ..TaurusConfig::test()
    };
    TaurusDb::launch_with_clock(cfg, 4, 6, ManualClock::shared(), seed).unwrap()
}

fn settle(db: &TaurusDb) {
    let master = db.master();
    master.sal.flush_all_slices();
    for _ in 0..1500 {
        master.maintain();
        if master.sal.cv_lsn() == master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("k{i:03}").into_bytes()
}

/// Pushdown result vs an engine-local model evaluation of the same request.
fn check(scan: &TableScan, model: &BTreeMap<Vec<u8>, Vec<u8>>, req: &ScanRequest) {
    if let Some(a) = req.aggregate {
        let mut agg = AggState::default();
        for (k, v) in model {
            if req.matches(k, v) {
                agg.update(v);
            }
        }
        assert_eq!(scan.agg.count, agg.count, "req: {req:?}");
        assert_eq!(scan.agg.result(a), agg.result(a), "req: {req:?}");
        assert!(scan.rows.is_empty(), "aggregate scans return no rows");
    } else {
        let want: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter(|(k, v)| req.matches(k, v))
            .map(|(k, v)| req.projection.apply(k, v))
            .collect();
        assert_eq!(scan.rows, want, "req: {req:?}");
    }
}

// ---------------------------------------------------------------------
// Proptest: random workload × random requests
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum WOp {
    Put(u32, Vec<u8>),
    Del(u32),
}

fn apply(master: &Arc<MasterEngine>, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &WOp) {
    match op {
        WOp::Put(i, v) => {
            let k = key(*i);
            let mut t = master.begin();
            t.put(&k, v).unwrap();
            t.commit().unwrap();
            model.insert(k, v.clone());
        }
        WOp::Del(i) => {
            let k = key(*i);
            let mut t = master.begin();
            t.delete(&k).unwrap();
            t.commit().unwrap();
            model.remove(&k);
        }
    }
}

fn value() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary payloads…
        prop::collection::vec(any::<u8>(), 0..24),
        // …and 8-byte LE integers so SUM/MIN/MAX aggregates have food.
        any::<u64>().prop_map(|n| n.to_le_bytes().to_vec()),
    ]
}

fn ops(max: usize) -> impl Strategy<Value = Vec<WOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..48u32, value()).prop_map(|(k, v)| WOp::Put(k, v)),
            (0..48u32, value()).prop_map(|(k, v)| WOp::Put(k, v)),
            (0..48u32, value()).prop_map(|(k, v)| WOp::Put(k, v)),
            (0..48u32).prop_map(WOp::Del),
        ],
        1..max,
    )
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        // Key-shaped bytes so range/equality predicates actually select.
        (0..48u32).prop_map(|i| Operand::Bytes(key(i))),
        prop::collection::vec(any::<u8>(), 0..6).prop_map(Operand::Bytes),
        any::<u64>().prop_map(Operand::U64),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

fn request() -> impl Strategy<Value = ScanRequest> {
    let field = prop_oneof![Just(Field::Key), Just(Field::Value)];
    let aggregate = prop_oneof![
        Just(Aggregate::Count),
        Just(Aggregate::SumU64),
        Just(Aggregate::MinU64),
        Just(Aggregate::MaxU64),
    ];
    let maybe_key = || prop_oneof![Just(None), (0..48u32).prop_map(Some)];
    (
        maybe_key(),
        maybe_key(),
        prop::collection::vec((field, cmp_op(), operand()), 0..3),
        any::<bool>(),
        prop_oneof![Just(None), aggregate.prop_map(Some)],
    )
        .prop_map(|(start, end, preds, key_only, agg)| {
            let mut req = ScanRequest::full();
            if let Some(s) = start {
                req.start = key(s);
            }
            if let Some(e) = end {
                req.end = Some(key(e));
            }
            for (f, op, operand) in preds {
                req = req.with_predicate(f, op, operand);
            }
            if key_only {
                req = req.with_projection(Projection::KeyOnly);
            }
            if let Some(a) = agg {
                req = req.with_aggregate(a);
            }
            req
        })
}

proptest! {
    // Every case launches a full simulated cluster; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pushdown_matches_model_at_every_snapshot(
        pre in ops(100),
        post in ops(40),
        reqs in prop::collection::vec(request(), 1..4),
    ) {
        let db = launch(11);
        let master = db.master();
        let mut model = BTreeMap::new();
        for op in &pre {
            apply(&master, &mut model, op);
        }
        settle(&db);

        // Live head: pushdown vs model.
        for req in &reqs {
            check(&master.scan_pushdown(req).unwrap(), &model, req);
        }

        // Pin a snapshot, keep writing, and re-check against the *frozen*
        // model: the Page Stores must materialize every page at the pinned
        // LSN even though newer records have landed on top.
        master.create_snapshot("pin");
        let frozen = model.clone();
        for op in &post {
            apply(&master, &mut model, op);
        }
        settle(&db);
        for req in &reqs {
            check(&master.snapshot_scan_pushdown("pin", req).unwrap(), &frozen, req);
        }

        // Kill one Page Store node: per-slice retry (next replica) and the
        // local ReadPage fallback must keep answers identical.
        db.fabric.set_down(db.pages.server_nodes()[0]);
        for req in &reqs {
            check(&master.scan_pushdown(req).unwrap(), &model, req);
        }
    }
}

// ---------------------------------------------------------------------
// Concurrent writer + mid-run replica kill (deterministic)
// ---------------------------------------------------------------------

#[test]
fn pushdown_agrees_with_fetch_under_concurrent_writes_and_replica_loss() {
    let db = launch(23);
    let master = db.master();
    for i in 0..120u32 {
        let mut t = master.begin();
        t.put(&key(i), format!("v{}", i % 7).as_bytes()).unwrap();
        t.commit().unwrap();
    }
    settle(&db);

    // A writer hammers a disjoint key range the whole time.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let master = db.master();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut t = master.begin();
                t.put(format!("w{i:06}").as_bytes(), b"noise").unwrap();
                t.commit().unwrap();
                i += 1;
            }
        })
    };

    // Scans only see the seeded range; the writer churns underneath.
    let req = ScanRequest::full()
        .with_range(b"k", Some(b"l"))
        .with_predicate(Field::Value, CmpOp::Eq, Operand::Bytes(b"v3".to_vec()));
    for round in 0..5 {
        let name = format!("s{round}");
        master.create_snapshot(&name);
        if round == 2 {
            // Kill a Page Store replica mid-run: retries and the ReadPage
            // fallback must keep both paths in agreement.
            db.fabric.set_down(db.pages.server_nodes()[0]);
        }
        let fetched: Vec<(Vec<u8>, Vec<u8>)> = master
            .snapshot_scan(&name, b"", usize::MAX)
            .unwrap()
            .into_iter()
            .filter(|(k, v)| req.matches(k, v))
            .collect();
        let pushed = master.snapshot_scan_pushdown(&name, &req).unwrap();
        assert_eq!(pushed.rows, fetched, "round {round}");
        assert_eq!(pushed.rows.len(), 17, "120 rows, every 7th has v3");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}
