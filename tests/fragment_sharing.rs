//! The write pipeline must share one encoded fragment across all three
//! replica pipes via `Arc` — zero deep clones of `SliceFragment` on the hot
//! path. The deep-clone counter is process-global, so this test lives in
//! its own integration-test binary (its own process).

// Harness code: aborting on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use taurus::common::clock::ManualClock;
use taurus::prelude::*;

#[test]
fn healthy_workload_deep_clones_no_fragments() {
    let cfg = TaurusConfig {
        log_buffer_bytes: 1, // flush on every commit: maximal fragment traffic
        slice_buffer_bytes: 1,
        ..TaurusConfig::test()
    };
    let db = TaurusDb::launch_with_clock(cfg, 6, 8, ManualClock::shared(), 7).unwrap();
    let master = db.master();
    for i in 0..40u32 {
        let mut t = master.begin();
        t.put(format!("key-{i:02}").as_bytes(), b"v").unwrap();
        t.commit().unwrap();
    }
    master.sal.flush_all_slices();
    for _ in 0..300 {
        master.maintain();
        if master.sal.cv_lsn() == master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    for i in 0..40u32 {
        assert!(master
            .get(format!("key-{i:02}").as_bytes())
            .unwrap()
            .is_some());
    }
    assert_eq!(
        taurus::pagestore::deep_clone_count(),
        0,
        "flush path must ship one shared fragment, never deep copies"
    );
}
