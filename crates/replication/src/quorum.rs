//! Closed-form availability math (paper §4.4, equations 1–2, Table 1).

/// A quorum replication configuration: `N` replicas, writes need `n_w`
/// acknowledgments, reads need `n_r`. Strong consistency requires
/// `n_r + n_w > N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuorumConfig {
    pub n: u32,
    pub n_w: u32,
    pub n_r: u32,
    pub label: &'static str,
}

impl QuorumConfig {
    pub const fn new(n: u32, n_w: u32, n_r: u32, label: &'static str) -> Self {
        QuorumConfig { n, n_w, n_r, label }
    }

    /// Whether the configuration guarantees strong consistency.
    pub fn strongly_consistent(&self) -> bool {
        self.n_r + self.n_w > self.n
    }
}

/// The three quorum rows of Table 1 (Aurora, PolarDB, RAID-1-style).
pub const TABLE1_ROWS: [QuorumConfig; 3] = [
    QuorumConfig::new(6, 4, 3, "N=6, Nw=4, Nr=3 (Aurora)"),
    QuorumConfig::new(3, 2, 2, "N=3, Nw=2, Nr=2 (PolarDB)"),
    QuorumConfig::new(3, 3, 1, "N=3, Nw=3, Nr=1 (RAID-1)"),
];

/// Binomial coefficient C(n, k).
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    let mut den = 1.0f64;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// Equation 1: probability a quorum **write** cannot complete when each node
/// is independently unavailable with probability `x`:
/// `P_w = Σ_{i=N-N_w+1}^{N} C(N,i) x^i (1-x)^{N-i}`.
pub fn quorum_write_unavailability(cfg: QuorumConfig, x: f64) -> f64 {
    (cfg.n - cfg.n_w + 1..=cfg.n)
        .map(|i| binomial(cfg.n, i) * x.powi(i as i32) * (1.0 - x).powi((cfg.n - i) as i32))
        .sum()
}

/// Equation 2: probability a quorum **read** cannot complete.
pub fn quorum_read_unavailability(cfg: QuorumConfig, x: f64) -> f64 {
    (cfg.n - cfg.n_r + 1..=cfg.n)
        .map(|i| binomial(cfg.n, i) * x.powi(i as i32) * (1.0 - x).powi((cfg.n - i) as i32))
        .sum()
}

/// Taurus write unavailability: zero under uncorrelated failures — a failed
/// write seals the PLog and retries on any three healthy Log Stores, so only
/// the cluster running out of three healthy nodes blocks writes (§4.4).
pub fn taurus_write_unavailability(_x: f64) -> f64 {
    0.0
}

/// Taurus read unavailability: a read fails only when **all three** Page
/// Store replicas of the slice are simultaneously unavailable: `x³` (§4.4).
pub fn taurus_read_unavailability(x: f64) -> f64 {
    x * x * x
}

/// Leading-order approximations used in the body of Table 1.
pub fn approx_write(cfg: QuorumConfig, x: f64) -> f64 {
    let i = cfg.n - cfg.n_w + 1;
    binomial(cfg.n, i) * x.powi(i as i32)
}

/// Leading-order read approximation.
pub fn approx_read(cfg: QuorumConfig, x: f64) -> f64 {
    let i = cfg.n - cfg.n_r + 1;
    binomial(cfg.n, i) * x.powi(i as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        if b == 0.0 {
            return a == 0.0;
        }
        ((a - b) / b).abs() <= rel
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(6, 3), 20.0);
        assert_eq!(binomial(6, 4), 15.0);
        assert_eq!(binomial(3, 1), 3.0);
        assert_eq!(binomial(3, 2), 3.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(4, 5), 0.0);
    }

    #[test]
    fn table1_configs_are_strongly_consistent() {
        for cfg in TABLE1_ROWS {
            assert!(cfg.strongly_consistent(), "{}", cfg.label);
        }
    }

    #[test]
    fn approximations_match_paper_table1_formulas() {
        // Aurora: write ≈ 20x³, read ≈ 15x⁴.
        let aurora = TABLE1_ROWS[0];
        assert!(close(
            approx_write(aurora, 0.1),
            20.0 * 0.1f64.powi(3),
            1e-12
        ));
        assert!(close(
            approx_read(aurora, 0.1),
            15.0 * 0.1f64.powi(4),
            1e-12
        ));
        // PolarDB: both ≈ 3x².
        let polar = TABLE1_ROWS[1];
        assert!(close(approx_write(polar, 0.1), 3.0 * 0.01, 1e-12));
        assert!(close(approx_read(polar, 0.1), 3.0 * 0.01, 1e-12));
        // RAID-1: write ≈ 3x, read ≈ x³.
        let raid = TABLE1_ROWS[2];
        assert!(close(approx_write(raid, 0.1), 3.0 * 0.1, 1e-12));
        assert!(close(approx_read(raid, 0.1), 0.1f64.powi(3), 1e-12));
    }

    #[test]
    fn exact_values_reproduce_paper_magnitudes() {
        // Paper Table 1 at x = 0.05: Aurora write ≈ 3e-3, Aurora read ≈ 1e-4.
        let aurora = TABLE1_ROWS[0];
        let w = quorum_write_unavailability(aurora, 0.05);
        assert!((2e-3..5e-3).contains(&w), "aurora write {w}");
        let r = quorum_read_unavailability(aurora, 0.05);
        assert!((5e-5..2e-4).contains(&r), "aurora read {r}");
        // PolarDB at x = 0.05 ≈ 8e-3 for both.
        let polar = TABLE1_ROWS[1];
        let w = quorum_write_unavailability(polar, 0.05);
        assert!((5e-3..1e-2).contains(&w), "polar write {w}");
        // Taurus at x = 0.05: write 0, read ≈ 1.25e-4 (paper rounds to 1e-4).
        assert_eq!(taurus_write_unavailability(0.05), 0.0);
        let tr = taurus_read_unavailability(0.05);
        assert!(close(tr, 1.25e-4, 1e-9), "taurus read {tr}");
    }

    #[test]
    fn taurus_read_always_at_least_as_good_as_3_replica_quorums() {
        for x in [0.15, 0.05, 0.01, 0.001] {
            let t = taurus_read_unavailability(x);
            {
                let cfg = TABLE1_ROWS[1];
                assert!(
                    t <= quorum_read_unavailability(cfg, x) + 1e-15,
                    "x={x} {}",
                    cfg.label
                );
            }
            // And matches RAID-1's read (both are x³).
            assert!(close(
                t,
                quorum_read_unavailability(TABLE1_ROWS[2], x),
                1e-9
            ));
        }
    }

    #[test]
    fn exact_dominates_approximation_for_small_x() {
        for cfg in TABLE1_ROWS {
            for x in [0.01, 0.001] {
                let exact = quorum_write_unavailability(cfg, x);
                let approx = approx_write(cfg, x);
                assert!(
                    close(exact, approx, 0.25),
                    "{} x={x}: {exact} vs {approx}",
                    cfg.label
                );
            }
        }
    }

    #[test]
    fn probabilities_are_well_formed() {
        for cfg in TABLE1_ROWS {
            for x in [0.0, 0.05, 0.5, 1.0] {
                for p in [
                    quorum_write_unavailability(cfg, x),
                    quorum_read_unavailability(cfg, x),
                ] {
                    assert!(
                        (0.0..=1.0 + 1e-12).contains(&p),
                        "{} x={x} p={p}",
                        cfg.label
                    );
                }
            }
            // At x = 1 everything is down.
            assert!(close(quorum_write_unavailability(cfg, 1.0), 1.0, 1e-9));
        }
    }
}
