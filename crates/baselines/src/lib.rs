//! # taurus-baselines
//!
//! The comparator architectures of the paper's evaluation (§2, §4.4, §8),
//! built on the same substrates (fabric, devices, B+tree, page format) as
//! Taurus so that benchmark gaps isolate the *architecture*:
//!
//! * [`monolithic`] — a traditional engine on local storage ("MySQL 8.0
//!   with locally attached storage", Fig. 8): write-ahead log plus
//!   write-in-place full-page flushing, optionally with a doublewrite
//!   buffer (vanilla) or without it plus relaxed flushing (the paper's
//!   "optimized front end" port);
//! * [`quorum`] — Aurora-style (N=6, W=4) and PolarDB-style (N=3, W=2)
//!   quorum storage: the engine ships log fragments to N storage replicas
//!   and waits for W acknowledgments; reads probe replicas until one is
//!   caught up;
//! * [`socrates`] — a Socrates-style four-tier stack: identical to Taurus
//!   except page reads traverse an additional network-separated tier (the
//!   page-server layer in front of storage, §2);
//! * [`streaming`] — the rejected read-replica design where the master
//!   streams log data to every replica through its own NIC (§6's 12 Gbps
//!   back-of-envelope), used by the Fig. 9 lag comparison;
//! * [`adapters`] — [`taurus_workload::Executor`] implementations for the
//!   Taurus master, Taurus read replicas, and every baseline, so one driver
//!   measures them all.

pub mod adapters;
pub mod monolithic;
pub mod quorum;
pub mod socrates;
pub mod streaming;

pub use adapters::{
    LocalExecutor, QuorumExecutor, ReplicaExecutor, SocratesExecutor, TaurusExecutor,
};
pub use monolithic::LocalEngine;
pub use quorum::QuorumEngine;
pub use socrates::SocratesDb;
pub use streaming::StreamingReplicaSim;
