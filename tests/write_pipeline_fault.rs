//! Fault-injection end-to-end test for the resilient SAL → Page Store write
//! pipeline: one of three Page Store replicas dies mid-workload, the
//! workload completes (durability comes from the Log Stores; Page Stores are
//! wait-for-one), no fragment is lost, and after the node returns the
//! recovery machinery catches it back up and clears its *suspect* mark.

// Harness code: aborting on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use taurus::common::clock::ManualClock;
use taurus::prelude::*;

fn settle(db: &TaurusDb) {
    let master = db.master();
    master.sal.flush_all_slices();
    for _ in 0..1500 {
        master.maintain();
        if master.sal.cv_lsn() == master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

fn put(db: &TaurusDb, k: &str, v: &str) {
    let master = db.master();
    let mut t = master.begin();
    t.put(k.as_bytes(), v.as_bytes()).unwrap();
    t.commit().unwrap();
}

#[test]
fn replica_death_mid_workload_parks_suspects_and_heals() {
    let clock = ManualClock::shared();
    let cfg = TaurusConfig {
        log_buffer_bytes: 1, // flush on every commit: maximal pipeline traffic
        slice_buffer_bytes: 1,
        ..TaurusConfig::test()
    };
    let manual = Arc::clone(&clock);
    let db = TaurusDb::launch_with_clock(cfg, 6, 8, clock, 99).unwrap();
    let clock = manual;
    for i in 0..30u32 {
        put(&db, &format!("pre-{i:02}"), "v");
    }
    settle(&db);

    let master = db.master();
    let slice = master.sal.slice_keys()[0];
    let victim = db.pages.replicas_of(slice)[0];
    db.fabric.set_down(victim);
    let _ = db.run_recovery_round(); // failure detector registers the outage

    // The workload keeps committing: two live replicas satisfy
    // wait-for-one, and the Log Stores hold durability regardless.
    for i in 0..30u32 {
        put(&db, &format!("post-{i:02}"), "v");
    }
    settle(&db);
    assert_eq!(master.sal.cv_lsn(), master.sal.durable_lsn());

    // Every committed key reads back while the replica is still down.
    for i in 0..30u32 {
        assert!(master
            .get(format!("pre-{i:02}").as_bytes())
            .unwrap()
            .is_some());
        assert!(master
            .get(format!("post-{i:02}").as_bytes())
            .unwrap()
            .is_some());
    }

    // The victim's sender worker exhausts its retry budget in the
    // background: fragments for it are parked and the node is demoted.
    for _ in 0..2500 {
        if master.sal.is_suspect(victim) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let mid = master.sal.stats.snapshot();
    assert!(
        master.sal.is_suspect(victim),
        "victim must be suspect: {mid}"
    );
    assert!(mid.write_retries >= 1, "retries must be counted: {mid}");
    assert!(
        mid.fragments_parked + mid.queue_full_drops >= 1,
        "undelivered fragments must be parked or shed, not lost: {mid}"
    );
    assert!(mid.suspect_demotions >= 1, "{mid}");

    // The node returns. Recovery rounds (which drain the parked set) plus
    // routine maintenance catch it up and resurrect it.
    db.fabric.set_up(victim);
    let compute = master.sal.me;
    let mut healed = false;
    for _ in 0..300 {
        master.maintain();
        let _ = db.run_recovery_round();
        let caught_up = master.sal.slice_keys().iter().all(|&key| {
            let replicas = db.pages.replicas_of(key);
            if !replicas.contains(&victim) {
                return true;
            }
            let target = replicas
                .iter()
                .filter_map(|&n| db.pages.persistent_lsn_of(n, compute, key).ok())
                .max()
                .unwrap();
            db.pages
                .persistent_lsn_of(victim, compute, key)
                .is_ok_and(|l| l >= target)
        });
        if caught_up && !master.sal.is_suspect(victim) {
            healed = true;
            break;
        }
        clock.advance(db.cfg.lag_repair_timeout_us + 1);
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    assert!(
        healed,
        "victim never caught up: {}",
        master.sal.stats.snapshot()
    );

    let end = master.sal.stats.snapshot();
    assert!(
        end.resends + end.gossip_triggers >= 1,
        "catch-up must go through repair: {end}"
    );
    assert!(end.suspect_resurrections >= 1, "{end}");
    assert!(
        master.sal.parked_slices().is_empty(),
        "no fragment may stay parked after repair"
    );

    // Nothing was lost end to end.
    for i in 0..30u32 {
        assert!(master
            .get(format!("pre-{i:02}").as_bytes())
            .unwrap()
            .is_some());
        assert!(master
            .get(format!("post-{i:02}").as_bytes())
            .unwrap()
            .is_some());
    }
}
