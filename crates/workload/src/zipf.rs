//! Zipfian key-distribution sampler (Gray et al. / YCSB formulation).
//!
//! Used to skew page/key traffic, e.g. for the Page Store buffer pool
//! ablation (hot pages vs cold pages, paper §7).

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(θ) sampler over `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// `theta` in `(0, 1)`; typical YCSB skew is 0.99.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for modest n; benches use n up to a few million, where
        // this one-time cost is acceptable.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a rank in `0..n` (0 is the hottest item).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let raw = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        raw.min(self.n - 1)
    }

    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Uniform special case helper (theta == 0 gives an almost-uniform
    /// distribution; this is exact).
    pub fn uniform(n: u64) -> Self {
        Self::new(n, 0.0)
    }

    #[allow(dead_code)]
    fn debug_consts(&self) -> (f64, f64) {
        (self.zeta2, self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..50_000).map(|_| z.sample(&mut rng)).collect();
        let head = samples.iter().filter(|&&s| s < 100).count() as f64 / samples.len() as f64;
        assert!(
            head > 0.3,
            "1% of keys should draw >30% of traffic, got {head}"
        );
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let z = Zipf::uniform(100);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 2.5, "uniform spread too skewed: {min}..{max}");
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        Zipf::new(0, 0.5);
    }
}
