//! # taurus-common
//!
//! Shared substrate for the Taurus database reproduction (Depoutovitch et al.,
//! SIGMOD 2020). This crate defines the vocabulary every other layer speaks:
//!
//! * [`Lsn`] — log sequence numbers, the global version axis of the database;
//! * identifiers for pages, slices, PLogs, nodes, and transactions ([`ids`]);
//! * the physiological redo [`record`] format ("the log is the database");
//! * the slotted [`page`] layout shared by the engine's buffer pool, read
//!   replicas, and Page Store consolidation;
//! * [`apply`] — the single shared function that replays a log record onto a
//!   page, used identically by every component that materializes pages;
//! * [`clock`] — pluggable time (system or manual/virtual) so failure drills
//!   are deterministic;
//! * [`config`] — all tunables of the system in one place;
//! * [`metrics`] — small latency/throughput helpers used by the bench harness;
//! * [`scan`] — the serializable scan/aggregate operator and its evaluator,
//!   shared by Page-Store pushdown execution and engine-side fallback;
//! * [`invariants`] — the runtime invariant registry behind the
//!   [`invariant!`](crate::invariant) macro (the `invariants` feature).

pub mod apply;
pub mod clock;
pub mod config;
pub mod error;
pub mod ids;
pub mod invariants;
pub mod lsn;
pub mod metrics;
pub mod page;
pub mod record;
pub mod scan;
pub mod sync;

pub use config::TaurusConfig;
pub use error::{Result, TaurusError};
pub use ids::{DbId, NodeId, PLogId, PageId, SliceId, SliceKey, TxnId};
pub use lsn::Lsn;
pub use page::{PageBuf, PageType, PAGE_SIZE};
pub use record::{LogRecord, LogRecordGroup, RecordBody};
pub use scan::{
    evaluate_leaf_page, AggState, Aggregate, CmpOp, Field, Operand, Predicate, Projection,
    ScanAccumulator, ScanRequest,
};
