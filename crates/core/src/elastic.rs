//! Elastic slice management: online split / merge / replica move with a
//! fenced-LSN cut-over (DESIGN.md §14).
//!
//! Every operation follows the same three-act script:
//!
//! 1. **Seed** — export a snapshot of the source slice(s) from a healthy
//!    replica and import it on the target nodes as a *rebuilding* slice.
//!    The snapshot's persistent LSN is the successor's **base LSN** `E`.
//! 2. **Commit + seal** (the critical section, under the SAL `state` lock):
//!    flush the source buffer(s), take the flush LSN as the **fence** `F`,
//!    commit the new placement (epoch bump), and install the successor's
//!    `SliceState` seeded at `F`. From this instant `route_write` sends new
//!    records to the successor; the old placement owns exactly `(…, F]`.
//! 3. **Fence + delta replay** (outside the lock): tell the old replicas
//!    their fence so late reads above `F` bounce with `SliceFenced`, then
//!    replay the delta `(E, F]` from the Log Stores onto the successor
//!    (repair path). The interval `(E, F]` is deliberately double-stored —
//!    on the retired parent *and* the successor — but never double-served:
//!    readers route by fence (`route_read` picks the retired slice with the
//!    smallest fence at or above `as_of`, else the active successor).
//!
//! A coordinator crash between acts 2 and 3 (the `cutover_abort` failpoint)
//! is safe: the placement commit is the atomic switch. The successor is
//! already routable and its delta is repaired by the recovery service's
//! parked-slice drain; stale replicas that missed their fence learn it from
//! the next placement-carrying gossip sweep
//! (`PageStoreCluster::placement_sweep`).

use std::sync::Arc;

use taurus_common::{Lsn, NodeId, Result, SliceKey, TaurusError};

use crate::sal::Sal;

/// What one elastic operation did (tests and the rebalancer log this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutoverReport {
    /// Slices retired by the operation.
    pub retired: Vec<SliceKey>,
    /// Slices created (split children, merge product) or re-homed (move).
    pub created: Vec<SliceKey>,
    /// Seed snapshot horizon: successor page versions at or below `E` come
    /// from the imported copy.
    pub base_lsn: Lsn,
    /// Cut-over fence: the retired placement owns exactly `(…, F]`.
    pub fence_lsn: Lsn,
    /// Placement epoch after the commit.
    pub epoch: u64,
    /// True when the armed crash failpoint fired: the placement committed
    /// but the fence/delta acts were skipped (recovery must finish them).
    pub aborted: bool,
}

/// Splits `parent` at `at_page` (absolute page id): pages below stay on the
/// left child, pages at or above go to the right child. The left child
/// inherits the parent's replicas; the right child lands on the least-loaded
/// Page Store nodes.
pub fn split_slice(sal: &Arc<Sal>, parent: SliceKey, at_page: u64) -> Result<CutoverReport> {
    let pps = sal.cfg.pages_per_slice;
    let Some((start, end)) = sal.pages.slice_range(parent, pps) else {
        return Err(TaurusError::SliceNotFound(parent));
    };
    if at_page <= start || at_page >= end {
        return Err(TaurusError::Internal(format!(
            "split point {at_page} outside slice range [{start}, {end})"
        )));
    }
    sal.ensure_slices(&[parent])?;

    // Act 1: seed both children from a healthy parent replica. The children
    // get fresh dynamic ids; the exports are range-filtered so each child
    // imports only the pages it will own.
    let left = sal.pages.allocate_dynamic(parent.db);
    let right = sal.pages.allocate_dynamic(parent.db);
    let parent_nodes = sal.pages.replicas_of(parent);
    let right_nodes = sal
        .pages
        .least_loaded_nodes(parent_nodes.len(), &parent_nodes)
        .unwrap_or_else(|_| parent_nodes.clone());
    let left_snap = sal
        .pages
        .export_snapshot(parent, Some((start, at_page)), sal.me)?;
    let right_snap = sal
        .pages
        .export_snapshot(parent, Some((at_page, end)), sal.me)?;
    let base_l = sal
        .pages
        .install_seed(left, &parent_nodes, vec![left_snap], sal.me)?;
    let base_r = sal
        .pages
        .install_seed(right, &right_nodes, vec![right_snap], sal.me)?;
    let base = base_l.min(base_r);

    // Act 2: commit + seal under the state lock.
    let (fence, epoch) = {
        let mut st = sal.state.lock();
        sal.flush_slice_locked(&mut st, parent);
        let fence = st
            .slices
            .get(&parent)
            .map(|s| s.flush_lsn)
            .unwrap_or(Lsn::ZERO);
        taurus_common::invariant!(
            "cutover-fence-covers-base",
            base <= fence,
            "{parent}: seed base {base} above fence {fence}"
        );
        let epoch = sal.pages.commit_split(
            parent,
            pps,
            at_page,
            (left, parent_nodes.clone()),
            (right, right_nodes.clone()),
            base,
            fence,
        )?;
        install_successor_state(&mut st, left, &parent_nodes, epoch, base, fence);
        install_successor_state(&mut st, right, &right_nodes, epoch, base, fence);
        if let Some(s) = st.slices.get_mut(&parent) {
            s.fence = Some(fence);
            s.epoch = epoch;
            s.flush_lsn = s.flush_lsn.max(fence);
        }
        (fence, epoch)
    };

    let report = CutoverReport {
        retired: vec![parent],
        created: vec![left, right],
        base_lsn: base,
        fence_lsn: fence,
        epoch,
        aborted: sal.take_cutover_abort(),
    };
    if report.aborted {
        return Ok(report);
    }

    // Act 3: fence the retired replicas, then replay the delta (E, F] onto
    // both children from the Log Stores.
    sal.pages
        .fence_replicas(parent, &parent_nodes, fence, epoch, sal.me);
    finish_delta(sal, &[left, right]);
    Ok(report)
}

/// Merges two *adjacent* slices into one. The merged slice lives on the
/// left slice's replicas; both donors retire at one shared fence.
pub fn merge_slices(sal: &Arc<Sal>, left: SliceKey, right: SliceKey) -> Result<CutoverReport> {
    let pps = sal.cfg.pages_per_slice;
    let (ls, le) = sal
        .pages
        .slice_range(left, pps)
        .ok_or(TaurusError::SliceNotFound(left))?;
    let (rs, re) = sal
        .pages
        .slice_range(right, pps)
        .ok_or(TaurusError::SliceNotFound(right))?;
    if le != rs {
        return Err(TaurusError::Internal(format!(
            "merge of non-adjacent slices [{ls}, {le}) and [{rs}, {re})"
        )));
    }
    sal.ensure_slices(&[left, right])?;

    // Act 1: seed the merged slice from both donors. `install_seed` takes
    // the *minimum* snapshot horizon as the base so the fragment chain
    // baseline covers both; replaying a record already captured by the
    // other donor's newer snapshot is harmless (consolidation ignores
    // records at or below an imported version's LSN).
    let merged = sal.pages.allocate_dynamic(left.db);
    let nodes = sal.pages.replicas_of(left);
    let left_snap = sal.pages.export_snapshot(left, Some((ls, le)), sal.me)?;
    let right_snap = sal.pages.export_snapshot(right, Some((rs, re)), sal.me)?;
    let base = sal
        .pages
        .install_seed(merged, &nodes, vec![left_snap, right_snap], sal.me)?;

    // Act 2: flush both donors, fence at the max of their flush LSNs.
    let right_nodes = sal.pages.replicas_of(right);
    let (fence, epoch) = {
        let mut st = sal.state.lock();
        sal.flush_slice_locked(&mut st, left);
        sal.flush_slice_locked(&mut st, right);
        let fl = st
            .slices
            .get(&left)
            .map(|s| s.flush_lsn)
            .unwrap_or(Lsn::ZERO);
        let fr = st
            .slices
            .get(&right)
            .map(|s| s.flush_lsn)
            .unwrap_or(Lsn::ZERO);
        let fence = fl.max(fr);
        taurus_common::invariant!(
            "cutover-fence-covers-base",
            base <= fence,
            "merge {left}+{right}: seed base {base} above fence {fence}"
        );
        let epoch =
            sal.pages
                .commit_merge(left, right, pps, (merged, nodes.clone()), base, fence)?;
        install_successor_state(&mut st, merged, &nodes, epoch, base, fence);
        for key in [left, right] {
            if let Some(s) = st.slices.get_mut(&key) {
                s.fence = Some(fence);
                s.epoch = epoch;
                s.flush_lsn = s.flush_lsn.max(fence);
            }
        }
        (fence, epoch)
    };

    let report = CutoverReport {
        retired: vec![left, right],
        created: vec![merged],
        base_lsn: base,
        fence_lsn: fence,
        epoch,
        aborted: sal.take_cutover_abort(),
    };
    if report.aborted {
        return Ok(report);
    }

    sal.pages.fence_replicas(left, &nodes, fence, epoch, sal.me);
    sal.pages
        .fence_replicas(right, &right_nodes, fence, epoch, sal.me);
    finish_delta(sal, &[merged]);
    Ok(report)
}

/// Moves one replica of `key` from `from_node` to `to_node`. The slice id
/// is unchanged — only the replica set and the epoch change; the *departing*
/// node is fenced so it stops serving reads above `F` while the other
/// replicas carry on.
pub fn move_slice_replica(
    sal: &Arc<Sal>,
    key: SliceKey,
    from_node: NodeId,
    to_node: NodeId,
) -> Result<CutoverReport> {
    let nodes = sal.pages.replicas_of(key);
    if !nodes.contains(&from_node) {
        return Err(TaurusError::Internal(format!(
            "{key}: {from_node} is not a replica"
        )));
    }
    if nodes.contains(&to_node) {
        return Err(TaurusError::Internal(format!(
            "{key}: {to_node} already holds a replica"
        )));
    }
    sal.ensure_slices(&[key])?;

    // Act 1: seed the new replica with a full snapshot of the slice.
    let range = sal.pages.slice_range(key, sal.cfg.pages_per_slice);
    let snap = sal.pages.export_snapshot(key, range, sal.me)?;
    let base = sal
        .pages
        .install_seed(key, &[to_node], vec![snap], sal.me)?;

    // Act 2: flush, fence, and swap the replica in placement + SAL state.
    let (fence, epoch) = {
        let mut st = sal.state.lock();
        sal.flush_slice_locked(&mut st, key);
        let fence = st
            .slices
            .get(&key)
            .map(|s| s.flush_lsn)
            .unwrap_or(Lsn::ZERO);
        taurus_common::invariant!(
            "cutover-fence-covers-base",
            base <= fence,
            "{key}: seed base {base} above fence {fence}"
        );
        let epoch = sal.pages.commit_move(key, from_node, to_node, fence)?;
        if let Some(s) = st.slices.get_mut(&key) {
            s.epoch = epoch;
            for n in s.replicas.iter_mut() {
                if *n == from_node {
                    *n = to_node;
                }
            }
            // The seed covers everything at or below `E`; expectations for
            // the departing node move to the newcomer at that horizon.
            s.replica_persistent.remove(&from_node);
            s.replica_persistent.insert(to_node, base);
            s.read_latency_us.remove(&from_node);
        }
        sal.suspects.lock().remove(&from_node);
        (fence, epoch)
    };

    let report = CutoverReport {
        retired: Vec::new(),
        created: vec![key],
        base_lsn: base,
        fence_lsn: fence,
        epoch,
        aborted: sal.take_cutover_abort(),
    };
    if report.aborted {
        return Ok(report);
    }

    // Act 3: fence only the departing node, then bring the newcomer up to
    // the flush LSN via the repair path.
    sal.pages
        .fence_replicas(key, &[from_node], fence, epoch, sal.me);
    finish_delta(sal, &[key]);
    Ok(report)
}

/// Installs the SAL-side state for a cut-over successor, inside the commit
/// critical section. The successor starts life at the fence: everything at
/// or below `F` is covered by the seed + delta replay, everything above
/// arrives through the normal write path.
fn install_successor_state(
    st: &mut crate::sal::SalState,
    key: SliceKey,
    nodes: &[NodeId],
    epoch: u64,
    base: Lsn,
    fence: Lsn,
) {
    let slice = st
        .slices
        .entry(key)
        .or_insert_with(|| crate::sal::SliceState::new(nodes.to_vec()));
    slice.replicas = nodes.to_vec();
    slice.epoch = epoch;
    slice.fence = None;
    slice.flush_lsn = fence;
    slice.acked_lsn = fence;
    for &n in nodes {
        slice.replica_persistent.insert(n, base);
    }
}

/// Replays each successor's delta `(E, F]` from the Log Stores and triggers
/// targeted gossip so every replica converges. Errors are swallowed — the
/// recovery service's parked/stall sweeps retry until the slices heal.
fn finish_delta(sal: &Arc<Sal>, keys: &[SliceKey]) {
    for &key in keys {
        let _ = sal.repair_slice_from_logstores(key);
        sal.trigger_gossip(key);
    }
}
