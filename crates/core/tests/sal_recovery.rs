//! Integration tests for the SAL write/read paths, CV-LSN semantics, log
//! truncation, and the recovery scenarios of paper Fig. 4.

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use bytes::Bytes;
use taurus_common::clock::ManualClock;
use taurus_common::config::{NetworkProfile, StorageProfile};
use taurus_common::lsn::{LsnAllocator, LsnWatermark};
use taurus_common::page::PageType;
use taurus_common::record::{LogRecord, LogRecordGroup, RecordBody};
use taurus_common::{DbId, Lsn, NodeId, PageId, SliceKey, TaurusConfig};
use taurus_core::{RecoveryService, Sal};
use taurus_fabric::{Fabric, NodeKind};
use taurus_logstore::LogStoreCluster;
use taurus_pagestore::cluster::PageStoreOptions;
use taurus_pagestore::PageStoreCluster;

struct Harness {
    clock: Arc<ManualClock>,
    fabric: Fabric,
    logs: LogStoreCluster,
    pages: PageStoreCluster,
    anchor: Arc<LsnWatermark>,
    me: NodeId,
    cfg: TaurusConfig,
    lsns: LsnAllocator,
}

impl Harness {
    fn new(log_nodes: usize, page_nodes: usize) -> Harness {
        let clock = ManualClock::shared();
        let fabric = Fabric::new(clock.clone(), NetworkProfile::instant(), 1234);
        let me = fabric.add_node(NodeKind::Compute);
        let cfg = TaurusConfig {
            log_buffer_bytes: 1, // flush on every group: deterministic tests
            slice_buffer_bytes: 1,
            ..TaurusConfig::test()
        };
        let logs = LogStoreCluster::new(fabric.clone(), cfg.log_replicas, cfg.logstore_cache_bytes);
        logs.spawn_servers(log_nodes, StorageProfile::instant());
        let pages = PageStoreCluster::new(
            fabric.clone(),
            cfg.page_replicas,
            PageStoreOptions::default(),
        );
        pages.spawn_servers(page_nodes, StorageProfile::instant());
        Harness {
            clock,
            fabric,
            logs,
            pages,
            anchor: Arc::new(LsnWatermark::new(Lsn::ZERO)),
            me,
            cfg,
            lsns: LsnAllocator::new(Lsn::ZERO),
        }
    }

    fn sal(&self) -> Arc<Sal> {
        Sal::create(
            self.cfg.clone(),
            DbId(1),
            self.me,
            self.logs.clone(),
            self.pages.clone(),
            Arc::clone(&self.anchor),
        )
        .unwrap()
    }

    /// Writes one group that formats `page` then inserts (k, v) into it.
    fn write_kv(&self, sal: &Sal, page: u64, k: &str, v: &str, format: bool) -> Lsn {
        let mut records = Vec::new();
        if format {
            records.push(LogRecord::new(
                self.lsns.alloc(),
                PageId(page),
                RecordBody::Format {
                    ty: PageType::Leaf,
                    level: 0,
                },
            ));
        }
        records.push(LogRecord::new(
            self.lsns.alloc(),
            PageId(page),
            RecordBody::Insert {
                idx: 0,
                key: Bytes::copy_from_slice(k.as_bytes()),
                val: Bytes::copy_from_slice(v.as_bytes()),
            },
        ));
        let group = LogRecordGroup::new(DbId(1), records);
        let end = group.end_lsn();
        sal.log_group(group).unwrap();
        sal.flush().unwrap();
        end
    }

    /// Lets background sender threads drain (real threads, manual clock).
    fn settle(&self, sal: &Sal) {
        sal.flush_all_slices();
        for _ in 0..200 {
            std::thread::sleep(std::time::Duration::from_micros(200));
            if sal.cv_lsn() == sal.durable_lsn() {
                break;
            }
        }
    }
}

#[test]
fn write_path_reaches_durability_and_cv_advances() {
    let h = Harness::new(5, 5);
    let sal = h.sal();
    let end = h.write_kv(&sal, 1, "alpha", "1", true);
    assert_eq!(sal.durable_lsn(), end);
    h.settle(&sal);
    assert_eq!(sal.cv_lsn(), end, "CV-LSN must reach the buffer end");
    // All three replicas eventually hold the records (they were all sent).
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    for node in h.pages.replicas_of(key) {
        let p = h.pages.persistent_lsn_of(node, h.me, key).unwrap();
        assert_eq!(p, end, "replica {node} persistent");
    }
}

#[test]
fn reads_come_back_versioned_from_page_stores() {
    let h = Harness::new(4, 4);
    let sal = h.sal();
    let v1 = h.write_kv(&sal, 1, "k", "v1", true);
    let v2 = h.write_kv(&sal, 1, "k2", "v2", false);
    h.settle(&sal);
    // Latest version has both records.
    let page = sal.read_page(PageId(1), None).unwrap();
    assert_eq!(page.nslots(), 2);
    assert_eq!(page.lsn(), v2);
    // Historic version: only the first insert.
    let page = sal.read_page(PageId(1), Some(v1)).unwrap();
    assert_eq!(page.nslots(), 1);
}

#[test]
fn writes_survive_a_downed_log_store_via_plog_switch() {
    let h = Harness::new(6, 4);
    let sal = h.sal();
    h.write_kv(&sal, 1, "a", "1", true);
    // Kill one Log Store node: the active PLog seals, a new one is created
    // elsewhere, and writes keep succeeding — ~100% write availability.
    let victim = h.fabric.healthy_nodes(NodeKind::LogStore)[0];
    h.fabric.set_down(victim);
    let end = h.write_kv(&sal, 1, "b", "2", false);
    assert_eq!(sal.durable_lsn(), end);
    h.settle(&sal);
    let page = sal.read_page(PageId(1), None).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn writes_succeed_with_two_of_three_page_store_replicas_down() {
    let h = Harness::new(4, 5);
    let sal = h.sal();
    h.write_kv(&sal, 1, "a", "1", true);
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replicas = h.pages.replicas_of(key);
    // Two of three Page Store replicas go down: the wait-for-one write
    // still succeeds (durability is on the Log Stores).
    h.fabric.set_down(replicas[0]);
    h.fabric.set_down(replicas[1]);
    let end = h.write_kv(&sal, 1, "b", "2", false);
    h.settle(&sal);
    assert_eq!(sal.cv_lsn(), end, "one surviving replica acks the write");
    // And the surviving replica serves the read.
    let page = sal.read_page(PageId(1), None).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn read_falls_through_behind_replicas_to_a_caught_up_one() {
    let h = Harness::new(4, 5);
    let sal = h.sal();
    h.write_kv(&sal, 1, "a", "1", true);
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replicas = h.pages.replicas_of(key);
    // Take two replicas down; write; bring them back (they are now BEHIND).
    h.fabric.set_down(replicas[0]);
    h.fabric.set_down(replicas[1]);
    let end = h.write_kv(&sal, 1, "b", "2", false);
    h.settle(&sal);
    h.fabric.set_up(replicas[0]);
    h.fabric.set_up(replicas[1]);
    // The SAL must iterate replicas until it finds the caught-up one.
    let page = sal.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn all_replicas_missing_data_triggers_logstore_repair_on_read() {
    let h = Harness::new(4, 6);
    let sal = h.sal();
    h.write_kv(&sal, 1, "a", "1", true);
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replicas = h.pages.replicas_of(key);
    // ALL replicas go down; a write still commits to the Log Stores, with no
    // Page Store holding the tail.
    for &r in &replicas {
        h.fabric.set_down(r);
    }
    let end = h.write_kv(&sal, 1, "b", "2", false);
    sal.flush_all_slices();
    std::thread::sleep(std::time::Duration::from_millis(5));
    for &r in &replicas {
        h.fabric.set_up(r);
    }
    // The versioned read finds every replica behind, repairs from the Log
    // Stores, and succeeds (§4.2).
    let page = sal.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn truncation_waits_for_all_replicas_then_deletes_plogs() {
    let h = Harness::new(5, 5);
    let mut cfg = TaurusConfig {
        plog_size_limit: 300,
        ..h.cfg.clone()
    };
    cfg.log_buffer_bytes = 1;
    let sal = Sal::create(
        cfg,
        DbId(1),
        h.me,
        h.logs.clone(),
        h.pages.clone(),
        Arc::clone(&h.anchor),
    )
    .unwrap();
    h.write_kv(&sal, 1, "k0", "v0", true);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let lagging = h.pages.replicas_of(key)[2];
    // One replica misses everything after the first write.
    h.fabric.set_down(lagging);
    for i in 1..8 {
        h.write_kv(&sal, 1, &format!("k{i}"), "v", false);
    }
    h.settle(&sal);
    let plogs_before = h.logs.plog_count();
    // With a lagging replica the database persistent LSN is pinned low:
    // truncation must delete nothing beyond it.
    let _ = sal.poll_persistent_lsns();
    let deleted = sal.truncate_log().unwrap();
    assert_eq!(deleted, 0, "lagging replica pins the log");
    // The replica recovers and catches up via gossip; truncation proceeds.
    h.fabric.set_up(lagging);
    sal.trigger_gossip(key);
    let deleted = sal.truncate_log().unwrap();
    assert!(deleted > 0, "caught-up cluster lets the log truncate");
    assert!(h.logs.plog_count() < plogs_before);
}

#[test]
fn fig4a_gossip_recovers_short_term_failure() {
    let h = Harness::new(4, 5);
    let sal = h.sal();
    h.write_kv(&sal, 1, "r1", "v", true);
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replica3 = h.pages.replicas_of(key)[2];
    // Replica 3 offline for a short time; record 2 lands on the others.
    h.fabric.set_down(replica3);
    h.write_kv(&sal, 1, "r2", "v", false);
    h.settle(&sal);
    h.fabric.set_up(replica3);
    let behind = h.pages.persistent_lsn_of(replica3, h.me, key).unwrap();
    // Gossip copies the missing fragment (Fig. 4(a) step 4).
    assert!(sal.trigger_gossip(key) >= 1);
    let caught_up = h.pages.persistent_lsn_of(replica3, h.me, key).unwrap();
    assert!(caught_up > behind);
    assert_eq!(caught_up, sal.durable_lsn());
}

#[test]
fn fig4b_persistent_lsn_regression_is_detected_and_repaired() {
    let h = Harness::new(4, 8);
    let sal = h.sal();
    h.write_kv(&sal, 1, "r1", "v", true);
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replicas = h.pages.replicas_of(key);
    let (r1, r2, r3) = (replicas[0], replicas[1], replicas[2]);
    // Step 2: replicas 2 and 3 offline briefly; record 2 is acked by r1
    // alone and dismissed by the SAL.
    h.fabric.set_down(r2);
    h.fabric.set_down(r3);
    let end = h.write_kv(&sal, 1, "r2", "v", false);
    sal.flush_all_slices();
    std::thread::sleep(std::time::Duration::from_millis(5));
    let _ = sal.poll_persistent_lsns();
    h.fabric.set_up(r2);
    h.fabric.set_up(r3);
    // Step 3: r1 suffers a long-term failure before gossip copies record 2.
    h.fabric.set_down(r1);
    h.fabric.decommission(r1);
    // Step 4: r1 is rebuilt from r2 (which misses record 2): the replacement
    // reports a persistent LSN LOWER than what r1 had reported.
    let new_node = h.pages.rebuild_replica(key, r1, h.me).unwrap();
    sal.refresh_placement();
    let regressed = sal.poll_persistent_lsns();
    assert!(
        regressed.contains(&key),
        "SAL must detect the persistent-LSN decrease"
    );
    // The SAL re-reads the log from the Log Stores and resends: no Page
    // Store had record 2, but the Log Stores still do.
    assert!(sal.repair_slice_from_logstores(key).unwrap() >= 1);
    for node in [new_node, r2, r3] {
        assert_eq!(
            h.pages.persistent_lsn_of(node, h.me, key).unwrap(),
            end,
            "replica {node} repaired"
        );
    }
    // And the data reads back complete.
    let page = sal.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn fig4c_hole_on_every_replica_is_parked_and_resent() {
    let h = Harness::new(4, 6);
    let sal = h.sal();
    h.write_kv(&sal, 1, "r1", "v", true); // record 1
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replicas = h.pages.replicas_of(key);
    // Record 2 is lost by everyone: all replicas down during the send. Each
    // sender worker burns its retry budget, then parks the slice and
    // demotes its replica to suspect.
    for &r in &replicas {
        h.fabric.set_down(r);
    }
    h.write_kv(&sal, 1, "r2", "v", false); // record 2: nowhere
    sal.flush_all_slices();
    for _ in 0..500 {
        if sal.parked_slices().contains(&key) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    assert!(
        sal.parked_slices().contains(&key),
        "slice must be parked after the retry budget"
    );
    assert!(
        sal.stats.write_retries.get() >= 1,
        "retries must be counted"
    );
    assert!(sal.stats.fragments_parked.get() >= 1);
    // Every replica missed the fragment, so every replica is suspect and
    // the hole exists nowhere but the Log Stores — gossip cannot help.
    std::thread::sleep(std::time::Duration::from_millis(2));
    assert_eq!(h.pages.gossip(key), 0);
    for &r in &replicas {
        h.fabric.set_up(r);
    }
    // Record 3 arrives everywhere. The first successful ack resurrects a
    // suspect, and the resurrection drains the parked slice by resending
    // record 2 from the Log Stores (Fig. 4(c) step 7) — proactively,
    // without waiting for the stall detector.
    let end = h.write_kv(&sal, 1, "r3", "v", false);
    h.settle(&sal);
    for &r in &replicas {
        let mut ok = false;
        for _ in 0..500 {
            if h.pages.persistent_lsn_of(r, h.me, key).unwrap() == end {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        assert!(ok, "replica {r} must be repaired to {end}");
    }
    assert!(sal.stats.resends.get() >= 1, "repair must resend from log");
    assert!(sal.stats.suspect_resurrections.get() >= 1);
    // The unpark happens on the sender side when the resend's ack is
    // processed — slightly after the replicas' persistent LSNs advance —
    // so bound-wait for it like the persistence checks above.
    for _ in 0..500 {
        if sal.parked_slices().is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    assert!(
        sal.parked_slices().is_empty(),
        "slice must unpark once all replicas caught up"
    );
    let page = sal.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 3);
}

#[test]
fn sal_restart_recovery_redoes_missing_records() {
    let h = Harness::new(5, 5);
    let sal = h.sal();
    h.write_kv(&sal, 1, "a", "1", true);
    h.write_kv(&sal, 2, "b", "2", true);
    h.settle(&sal);
    let anchor_before = {
        let _ = sal.poll_persistent_lsns();
        sal.truncate_log().unwrap();
        sal.recovery_anchor()
    };
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let replicas = h.pages.replicas_of(key);
    // A write that reaches the Log Stores but NO Page Store (crash window).
    for &r in &replicas {
        h.fabric.set_down(r);
    }
    let records = vec![LogRecord::new(
        h.lsns.alloc(),
        PageId(1),
        RecordBody::Insert {
            idx: 0,
            key: Bytes::from_static(b"aa"),
            val: Bytes::from_static(b"11"),
        },
    )];
    let group = LogRecordGroup::new(DbId(1), records);
    let end = group.end_lsn();
    sal.log_group(group).unwrap();
    sal.flush().unwrap();
    sal.flush_all_slices();
    std::thread::sleep(std::time::Duration::from_millis(5));
    // CRASH: drop the SAL entirely; bring the storage back.
    drop(sal);
    for &r in &replicas {
        h.fabric.set_up(r);
    }
    // Recover: redo must resend the lost record from the Log Stores.
    let (sal2, max_lsn) = Sal::recover(
        h.cfg.clone(),
        DbId(1),
        h.me,
        h.logs.clone(),
        h.pages.clone(),
        Arc::clone(&h.anchor),
    )
    .unwrap();
    assert!(max_lsn >= end);
    assert!(sal2.recovery_anchor() >= anchor_before);
    for &r in &replicas {
        assert_eq!(h.pages.persistent_lsn_of(r, h.me, key).unwrap(), end);
    }
    // The database serves the recovered data.
    let page = sal2.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.key(0).unwrap(), b"aa");
    // And accepts new writes continuing the LSN sequence.
    let lsns2 = LsnAllocator::new(max_lsn);
    let rec = LogRecord::new(
        lsns2.alloc(),
        PageId(2),
        RecordBody::Insert {
            idx: 0,
            key: Bytes::from_static(b"post"),
            val: Bytes::from_static(b"crash"),
        },
    );
    sal2.log_group(LogRecordGroup::new(DbId(1), vec![rec]))
        .unwrap();
    sal2.flush().unwrap();
    h.settle(&sal2);
    let key2 = SliceKey::new(DbId(1), PageId(2).slice(h.cfg.pages_per_slice));
    let _ = key2;
    let page = sal2.read_page(PageId(2), None).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn recovery_service_handles_long_term_page_store_failure_end_to_end() {
    let h = Harness::new(5, 8);
    let sal = h.sal();
    let mut svc = RecoveryService::new(Arc::clone(&sal));
    h.write_kv(&sal, 1, "a", "1", true);
    h.settle(&sal);
    let key = SliceKey::new(DbId(1), PageId(1).slice(h.cfg.pages_per_slice));
    let victim = h.pages.replicas_of(key)[0];
    h.fabric.set_down(victim);
    // First round: short-term classification, nothing drastic.
    let report = svc.run_once();
    assert_eq!(report.short_term_failures, 1);
    assert_eq!(report.slices_rebuilt, 0);
    // Time passes beyond the short-term window: long-term handling kicks in.
    h.clock.advance(h.cfg.short_term_failure_us + 1);
    let report = svc.run_once();
    assert_eq!(report.long_term_failures, 1);
    assert_eq!(report.slices_rebuilt, 1);
    assert!(!h.pages.replicas_of(key).contains(&victim));
    // Writes and reads keep flowing on the repaired placement.
    let end = h.write_kv(&sal, 1, "b", "2", false);
    h.settle(&sal);
    let page = sal.read_page(PageId(1), Some(end)).unwrap();
    assert_eq!(page.nslots(), 2);
}

#[test]
fn recovery_service_truncates_log_when_everyone_caught_up() {
    let h = Harness::new(5, 5);
    let cfg = TaurusConfig {
        plog_size_limit: 300,
        log_buffer_bytes: 1,
        slice_buffer_bytes: 1,
        ..TaurusConfig::test()
    };
    let sal = Sal::create(
        cfg,
        DbId(1),
        h.me,
        h.logs.clone(),
        h.pages.clone(),
        Arc::clone(&h.anchor),
    )
    .unwrap();
    let mut svc = RecoveryService::new(Arc::clone(&sal));
    for i in 0..10 {
        h.write_kv(&sal, 1, &format!("k{i}"), "v", i == 0);
    }
    h.settle(&sal);
    let before = h.logs.plog_count();
    let report = svc.run_once();
    assert!(report.plogs_truncated > 0, "report: {report:?}");
    assert!(h.logs.plog_count() < before);
}

#[test]
fn future_snapshot_is_capped_to_the_slice_head() {
    // A snapshot LSN above the slice's own last record is capped to the
    // slice head rather than refused: the slice has no records in between,
    // so the head version *is* the version at the requested LSN. (Global
    // snapshot LSNs routinely exceed a quiet slice's local maximum.)
    let h = Harness::new(4, 4);
    let sal = h.sal();
    let end = h.write_kv(&sal, 1, "a", "1", true);
    h.settle(&sal);
    let head = sal.read_page(PageId(1), None).unwrap();
    let capped = sal.read_page(PageId(1), Some(Lsn(end.0 + 100))).unwrap();
    assert_eq!(capped.lsn(), head.lsn());
    assert_eq!(capped.nslots(), head.nslots());
}
