//! Failure detection and classification.
//!
//! The paper's recovery service (§5) constantly monitors storage nodes.
//! A newly unavailable node is first classified as a *short-term* failure:
//! nothing is re-replicated, the node is expected back, and durability is
//! temporarily carried by the remaining replicas. If the outage exceeds a
//! threshold (15 minutes in production), it is reclassified as *long-term*:
//! the node is removed from the cluster and its data is re-created on the
//! remaining nodes.
//!
//! [`FailureDetector::poll`] is driven explicitly (by tests with a manual
//! clock, or by an orchestration thread in live runs) so failure drills are
//! deterministic.

use std::collections::HashSet;

use taurus_common::NodeId;

use crate::net::{Fabric, NodeKind, NodeStatus};

/// A state transition observed by the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEvent {
    /// A node just became unavailable; treat as short-term for now.
    ShortTermFailure(NodeId),
    /// An outage exceeded the short-term window: the node is considered
    /// permanently lost and has been decommissioned from the fabric. The
    /// owner of the node's data must re-replicate.
    LongTermFailure(NodeId),
    /// A node returned within the short-term window.
    Recovered(NodeId),
}

/// Polling failure detector over a set of node kinds.
#[derive(Debug)]
pub struct FailureDetector {
    fabric: Fabric,
    kinds: Vec<NodeKind>,
    short_term_window_us: u64,
    /// Nodes we have already reported as short-term-failed.
    reported_down: HashSet<NodeId>,
}

impl FailureDetector {
    /// `short_term_window_us` mirrors `TaurusConfig::short_term_failure_us`
    /// (the paper's 15-minute threshold, scaled).
    pub fn new(fabric: Fabric, kinds: Vec<NodeKind>, short_term_window_us: u64) -> Self {
        FailureDetector {
            fabric,
            kinds,
            short_term_window_us,
            reported_down: HashSet::new(),
        }
    }

    /// Scans all monitored nodes and returns the events that occurred since
    /// the previous poll. Long-term failures decommission the node as a side
    /// effect, exactly once.
    pub fn poll(&mut self) -> Vec<FailureEvent> {
        let now = self.fabric.clock.now_us();
        let mut events = Vec::new();
        for kind in &self.kinds {
            for node in self.fabric.all_nodes(*kind) {
                match self.fabric.status(node) {
                    Some(NodeStatus::Down { since_us }) => {
                        if now.saturating_sub(since_us) >= self.short_term_window_us {
                            self.fabric.decommission(node);
                            self.reported_down.remove(&node);
                            events.push(FailureEvent::LongTermFailure(node));
                        } else if self.reported_down.insert(node) {
                            events.push(FailureEvent::ShortTermFailure(node));
                        }
                    }
                    Some(NodeStatus::Up) if self.reported_down.remove(&node) => {
                        events.push(FailureEvent::Recovered(node));
                    }
                    _ => {}
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taurus_common::clock::ManualClock;
    use taurus_common::config::NetworkProfile;

    fn setup() -> (Fabric, Arc<ManualClock>, FailureDetector, Vec<NodeId>) {
        let clock = ManualClock::shared();
        let fabric = Fabric::new(clock.clone(), NetworkProfile::instant(), 1);
        let nodes = fabric.add_nodes(NodeKind::PageStore, 3);
        let det = FailureDetector::new(fabric.clone(), vec![NodeKind::PageStore], 1_000_000);
        (fabric, clock, det, nodes)
    }

    #[test]
    fn healthy_cluster_produces_no_events() {
        let (_, _, mut det, _) = setup();
        assert!(det.poll().is_empty());
        assert!(det.poll().is_empty());
    }

    #[test]
    fn short_then_recovered() {
        let (fabric, clock, mut det, nodes) = setup();
        fabric.set_down(nodes[0]);
        assert_eq!(det.poll(), vec![FailureEvent::ShortTermFailure(nodes[0])]);
        // Repeated polls within the window stay quiet.
        clock.advance(100);
        assert!(det.poll().is_empty());
        fabric.set_up(nodes[0]);
        assert_eq!(det.poll(), vec![FailureEvent::Recovered(nodes[0])]);
        assert!(det.poll().is_empty());
    }

    #[test]
    fn long_term_failure_decommissions_exactly_once() {
        let (fabric, clock, mut det, nodes) = setup();
        fabric.set_down(nodes[1]);
        assert_eq!(det.poll(), vec![FailureEvent::ShortTermFailure(nodes[1])]);
        clock.advance(1_000_000);
        assert_eq!(det.poll(), vec![FailureEvent::LongTermFailure(nodes[1])]);
        assert_eq!(fabric.status(nodes[1]), Some(NodeStatus::Decommissioned));
        // Never re-reported.
        clock.advance(10_000_000);
        assert!(det.poll().is_empty());
    }

    #[test]
    fn node_down_at_first_poll_after_window_goes_straight_to_long_term() {
        let (fabric, clock, mut det, nodes) = setup();
        fabric.set_down(nodes[2]);
        clock.advance(2_000_000); // no poll in between: outage discovered late
        assert_eq!(det.poll(), vec![FailureEvent::LongTermFailure(nodes[2])]);
    }

    #[test]
    fn multiple_simultaneous_failures_all_reported() {
        let (fabric, _, mut det, nodes) = setup();
        fabric.set_down(nodes[0]);
        fabric.set_down(nodes[2]);
        let mut events = det.poll();
        events.sort_by_key(|e| match e {
            FailureEvent::ShortTermFailure(n) => n.0,
            _ => u64::MAX,
        });
        assert_eq!(
            events,
            vec![
                FailureEvent::ShortTermFailure(nodes[0]),
                FailureEvent::ShortTermFailure(nodes[2]),
            ]
        );
    }
}
