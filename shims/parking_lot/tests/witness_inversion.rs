//! Deliberate lock-order inversion, proving the runtime lockdep witness
//! fires. Compiled (and meaningful) only under
//! `RUSTFLAGS="--cfg taurus_lock_witness"`; a plain build compiles this file
//! to nothing.
//!
//! Lives in its own integration-test binary on purpose: the witness order
//! graph and report queue are process-global, and the inversion seeded here
//! must not leak into the shim's other tests. For the same reason this is a
//! single test function — parallel tests would race on `take_reports`.
#![cfg(taurus_lock_witness)]

use parking_lot::Mutex;

#[test]
fn deliberate_inversion_is_reported_with_both_chains() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);

    // Establish the order a -> b ...
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // ... then acquire in the reverse order. Single-threaded, so this cannot
    // actually deadlock — the witness must still flag the inversion, which
    // is the whole point: it reports orders that *could* deadlock under an
    // adversarial interleaving, before one ever does.
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }

    let reports = parking_lot::witness_take_reports();
    assert_eq!(
        reports.len(),
        1,
        "exactly one inversion expected, got: {reports:#?}"
    );
    let report = &reports[0];
    assert!(
        report.contains("lock-order inversion"),
        "missing header: {report}"
    );
    // Both chains must appear: this thread's chain (holding b, acquiring a)
    // and the previously established a -> b order, each naming this file's
    // construction sites.
    assert!(
        report.contains("this thread's chain"),
        "missing acquiring chain: {report}"
    );
    assert!(
        report.contains("conflicting established order"),
        "missing established chain: {report}"
    );
    assert!(
        report.contains("witness_inversion.rs"),
        "chains should name construction sites in this file: {report}"
    );

    // One report per conflicting class pair: repeating the inversion does
    // not spam.
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    assert!(
        parking_lot::witness_take_reports().is_empty(),
        "repeat inversion must not re-report"
    );

    // A try-acquire against the established order contributes an edge but
    // cannot deadlock at its own site, so it must not fire a report.
    let x = Mutex::new(0u32);
    let y = Mutex::new(0u32);
    {
        let _gx = x.lock();
        let _gy = y.lock();
    }
    {
        let _gy = y.lock();
        let _gx = x.try_lock().expect("uncontended try_lock");
    }
    assert!(
        parking_lot::witness_take_reports().is_empty(),
        "try-acquire must not fire a report"
    );
}
