//! Offline shim for `parking_lot`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of the `parking_lot` API the workspace uses — `Mutex`, `RwLock`,
//! and `Condvar` with non-poisoning, non-`Result` lock methods — implemented
//! on top of `std::sync`. Poison is deliberately ignored: a panicked holder
//! simply releases the lock, matching parking_lot semantics.

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// parking_lot-style mutex: `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// parking_lot-style reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// parking_lot-style condvar paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety-free dance: std's condvar consumes and returns the guard,
        // parking_lot's mutates it in place. Temporarily move it out.
        take_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                timed_out = r.timed_out();
                g
            }
            Err(p) => {
                let (g, r) = p.into_inner();
                timed_out = r.timed_out();
                g
            }
        });
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Move the guard out of the slot, run `f`, and put the result back.
    // The `ManuallyDrop` + pointer dance avoids requiring `T: Default`.
    //
    // While `f` runs, the caller's slot holds a moved-out guard; if `f`
    // unwound (std's Condvar can panic, e.g. on a mutex mismatch), the
    // panic would drop the moved guard and the caller would later drop the
    // same bits again — a double mutex unlock. `AbortOnUnwind` is armed
    // across the call so that path aborts instead of corrupting the lock.
    use std::mem::ManuallyDrop;
    use std::ptr;

    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }

    unsafe {
        let guard = ptr::read(slot as *mut MutexGuard<'a, T>);
        let bomb = AbortOnUnwind;
        let new = f(guard);
        std::mem::forget(bomb);
        let mut new = ManuallyDrop::new(new);
        ptr::copy_nonoverlapping(&mut *new as *mut MutexGuard<'a, T>, slot, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
