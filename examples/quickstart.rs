//! Quickstart: launch a Taurus cluster, write transactionally, read from the
//! master and from a read replica, watch the SAL's LSN machinery move.
//!
//! Run with: `cargo run --example quickstart`

use taurus::prelude::*;

fn main() -> Result<()> {
    // 6 Log Store nodes + 6 Page Store nodes on a real-time clock with the
    // default simulated network/device latency profiles.
    let db = TaurusDb::launch(TaurusConfig::default(), 6, 6)?;
    let guard = db.start_background(500); // consolidation + housekeeping
    let master = db.master();

    println!("== writes go through the master, durable on 3 Log Stores ==");
    let mut txn = master.begin();
    txn.put(b"user:1", b"ada lovelace")?;
    txn.put(b"user:2", b"grace hopper")?;
    txn.put(b"user:3", b"edsger dijkstra")?;
    let commit_lsn = txn.commit()?;
    println!("committed at {commit_lsn} (durable on three Log Stores)");

    println!("\n== reads: buffer pool first, Page Stores on a miss ==");
    for key in [b"user:1".as_slice(), b"user:2", b"user:9"] {
        let value = master.get(key)?;
        println!(
            "  {} -> {:?}",
            String::from_utf8_lossy(key),
            value.map(|v| String::from_utf8_lossy(&v).into_owned())
        );
    }

    println!("\n== range scans walk the B+tree leaf chain ==");
    for (k, v) in master.scan(b"user:", 10)? {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(&k),
            String::from_utf8_lossy(&v)
        );
    }

    println!("\n== transactions: read-your-writes, conflicts, rollback ==");
    let mut t1 = master.begin();
    t1.put(b"balance", b"100")?;
    println!("  t1 sees its own write: {:?}", t1.get(b"balance")?);
    println!("  outside, it is invisible: {:?}", master.get(b"balance")?);
    let mut t2 = master.begin();
    match t2.put(b"balance", b"999") {
        Err(TaurusError::WriteConflict { .. }) => {
            println!("  t2 conflicts on the same key and aborts (first-updater-wins)")
        }
        other => println!("  unexpected: {other:?}"),
    }
    t2.rollback();
    t1.commit()?;

    println!("\n== a read replica tails the log from the Log Stores ==");
    let replica = db.add_replica()?;
    // Give the replica a beat to poll (the background thread drives it too).
    for _ in 0..50 {
        db.maintain();
        if replica.visible_lsn() >= master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    println!("  replica visible LSN: {}", replica.visible_lsn());
    println!(
        "  replica reads balance = {:?}",
        replica
            .get(b"balance")?
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    println!("\n== the SAL's watermark family (paper §3.5, §4.3) ==");
    println!(
        "  durable LSN (on Log Stores):        {}",
        master.sal.durable_lsn()
    );
    println!(
        "  cluster-visible LSN:                {}",
        master.sal.cv_lsn()
    );
    println!(
        "  database persistent LSN:            {}",
        master.sal.database_persistent_lsn()
    );
    println!(
        "  slices created:                     {}",
        master.sal.slice_keys().len()
    );

    drop(guard);
    println!("\ndone.");
    Ok(())
}
