//! Concurrency tests of the lock-free append path: many threads pushing
//! groups through one [`LogStream`] with per-hop network latency injected,
//! asserting the reservation/commit protocol keeps every PLog a gap-free,
//! monotone LSN range — including across a mid-run Log Store outage — and
//! that the pipeline's end state is deterministic.

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use parking_lot::Mutex;

use taurus_common::clock::ManualClock;
use taurus_common::config::{NetworkProfile, StorageProfile};
use taurus_common::page::PageType;
use taurus_common::record::{LogRecord, LogRecordGroup, RecordBody};
use taurus_common::{invariants, DbId, Lsn, PageId};
use taurus_fabric::{Fabric, NodeKind};
use taurus_logstore::{LogStoreCluster, LogStream};

const WINDOW: usize = 4;

fn setup(nodes: usize, plog_limit: usize) -> (Arc<LogStream>, LogStoreCluster) {
    let profile = NetworkProfile {
        hop_us: 120,
        jitter_us: 0,
        master_nic_bytes_per_sec: 0,
    };
    let fabric = Fabric::new(ManualClock::shared(), profile, 3);
    let me = fabric.add_node(NodeKind::Compute);
    let cluster = LogStoreCluster::new(fabric, 3, 1 << 20);
    cluster.spawn_servers(nodes, StorageProfile::instant());
    let stream =
        Arc::new(LogStream::create(cluster.clone(), DbId(1), me, plog_limit, WINDOW).unwrap());
    (stream, cluster)
}

fn group(first: u64, len: u64) -> (Bytes, Lsn, Lsn) {
    let records: Vec<LogRecord> = (first..first + len)
        .map(|l| {
            LogRecord::new(
                Lsn(l),
                PageId(l % 11),
                RecordBody::Format {
                    ty: PageType::Leaf,
                    level: 0,
                },
            )
        })
        .collect();
    let g = LogRecordGroup::new(DbId(1), records);
    (g.encode(), Lsn(first), Lsn(first + len - 1))
}

/// Runs `threads` appenders, each pushing `per_thread` groups. LSN ranges
/// come from a shared allocator whose lock is held across `reserve_append`
/// (reservations must be taken in LSN order); the replicated append itself
/// runs outside it, so up to `WINDOW` groups overlap their network round
/// trips.
fn run_appenders(stream: &Arc<LogStream>, threads: usize, per_thread: usize) -> Lsn {
    let alloc = Arc::new(Mutex::new(1u64));
    thread::scope(|scope| {
        for t in 0..threads {
            let stream = Arc::clone(stream);
            let alloc = Arc::clone(&alloc);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let len = 1 + ((t + i) % 4) as u64;
                    let (res, data) = {
                        let mut next = alloc.lock();
                        let (data, first, last) = group(*next, len);
                        *next += len;
                        let res = stream
                            .reserve_append(first, last, data.len() as u64)
                            .unwrap();
                        (res, data)
                    };
                    stream.complete_append(res, data).unwrap();
                }
            });
        }
    });
    let next = *alloc.lock();
    Lsn(next - 1)
}

/// Every PLog must hold a gap-free LSN run, consecutive PLogs must join
/// without gaps or overlap, and the cluster's committed length must match
/// the stream's byte bookkeeping exactly.
fn assert_plogs_partition_log(stream: &LogStream, cluster: &LogStoreCluster, last: Lsn) {
    let mut prev_last = Lsn::ZERO;
    for e in stream.entries() {
        if e.bytes == 0 {
            continue;
        }
        assert_eq!(
            e.first_lsn,
            prev_last.next(),
            "PLog {} does not start where the previous one ended",
            e.id
        );
        assert!(e.last_lsn >= e.first_lsn, "inverted range in {}", e.id);
        assert_eq!(
            cluster.committed_len(e.id),
            e.bytes,
            "committed length of {} behind stream bookkeeping",
            e.id
        );
        prev_last = e.last_lsn;
    }
    assert_eq!(prev_last, last, "PLog coverage does not reach the log end");
}

fn assert_groups_contiguous(stream: &LogStream, expected_groups: usize, last: Lsn) {
    let groups = stream.read_groups_from(Lsn(1)).unwrap();
    assert_eq!(groups.len(), expected_groups);
    let mut expect = Lsn(1);
    for g in &groups {
        assert_eq!(g.first_lsn(), expect, "gap in the readable log");
        expect = g.end_lsn().next();
    }
    assert_eq!(expect, last.next());
}

#[test]
fn concurrent_appends_stay_gap_free_per_plog() {
    let violations_before = invariants::violation_count();
    let (stream, cluster) = setup(6, 700);
    let threads = 4;
    let per_thread = 12;
    let last = run_appenders(&stream, threads, per_thread);

    assert_groups_contiguous(&stream, threads * per_thread, last);
    assert_plogs_partition_log(&stream, &cluster, last);
    assert!(
        stream.entries().len() > 1,
        "workload too small to exercise rollover"
    );

    let snap = stream.stats().snapshot();
    assert_eq!(snap.appends, (threads * per_thread) as u64);
    assert_eq!(
        stream.stats().appends_in_flight.get(),
        0,
        "append window not drained"
    );
    assert_eq!(
        invariants::violation_count(),
        violations_before,
        "invariant violations recorded during concurrent appends: {:?}",
        invariants::take_violations()
    );
}

#[test]
fn concurrent_appends_survive_mid_run_outage() {
    let violations_before = invariants::violation_count();
    let (stream, cluster) = setup(8, 900);
    let threads = 3;
    let per_thread = 8;

    let mid = run_appenders(&stream, threads, per_thread);
    assert!(mid > Lsn::ZERO);

    // Kill one replica of the live tail PLog: the next append to it fails,
    // seals everything reachable, and switches to a fresh PLog on healthy
    // nodes (paper §3.3 — a failed write is never retried to the same PLog).
    let tail = stream.entries().last().unwrap().id;
    let victim = cluster.replicas_of(tail)[0];
    cluster.fabric.set_down(victim);

    // Second wave appends concurrently through the failure.
    let alloc = Arc::new(Mutex::new(mid.0 + 1));
    thread::scope(|scope| {
        for t in 0..threads {
            let stream = Arc::clone(&stream);
            let alloc = Arc::clone(&alloc);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let len = 1 + ((t + i) % 3) as u64;
                    let (res, data) = {
                        let mut next = alloc.lock();
                        let (data, first, last) = group(*next, len);
                        *next += len;
                        let res = stream
                            .reserve_append(first, last, data.len() as u64)
                            .unwrap();
                        (res, data)
                    };
                    stream.complete_append(res, data).unwrap();
                }
            });
        }
    });
    let last = Lsn(*alloc.lock() - 1);
    cluster.fabric.set_up(victim);

    assert_groups_contiguous(&stream, 2 * threads * per_thread, last);
    assert_plogs_partition_log(&stream, &cluster, last);
    assert!(
        stream.stats().snapshot().seal_switches > 0,
        "outage did not force a seal-and-switch"
    );
    assert_eq!(stream.stats().appends_in_flight.get(), 0);
    assert_eq!(
        invariants::violation_count(),
        violations_before,
        "invariant violations recorded across the outage: {:?}",
        invariants::take_violations()
    );
}

/// The pipelined append path must stay deterministic: two identical runs on
/// fresh clusters end with identical PLog layouts and byte-identical
/// replica contents (this is what lets `taurus-determinism` diff end states
/// across seeded runs).
#[test]
fn pipelined_append_end_state_is_deterministic() {
    let run = || {
        let (stream, cluster) = setup(5, 600);
        let mut next = 1u64;
        for i in 0..30u64 {
            let len = 1 + (i % 4);
            let (data, first, last) = group(next, len);
            next += len;
            stream.append_group(data, first, last).unwrap();
        }
        let entries = stream.entries();
        let mut replica_bytes = Vec::new();
        for e in &entries {
            for node in cluster.replicas_of(e.id) {
                let server = cluster.server_handle(node).unwrap();
                replica_bytes.push(server.read_from(e.id, 0).unwrap());
            }
        }
        (entries, replica_bytes)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "PLog layout diverged between identical runs");
    assert_eq!(a.1, b.1, "replica bytes diverged between identical runs");
}
