//! Elastic rebalance bench: throughput under a mid-run skew ramp, with and
//! without the load-aware rebalancer (DESIGN.md §14).
//!
//! Three measured phases per scenario:
//!
//! 1. **uniform** — Zipf θ=0 traffic as the baseline;
//! 2. **skew** — the workload dials θ up mid-run ([`ZipfianWorkload::set_theta`])
//!    so the hot ranks pile onto a handful of adjacent slices;
//! 3. with the rebalancer enabled, an explicit rebalance round runs between
//!    workload chunks (same policy the background thread drives), splitting
//!    the dominating slice and moving replicas off the hottest node.
//!
//! Reported: per-phase TPS, per-node heat-ops spread (max/mean) before and
//! after rebalancing, and the actions the rebalancer took. CI smoke
//! (`TAURUS_REBALANCE_ASSERT=1`) asserts the rebalanced skewed throughput
//! stays within `TAURUS_REBALANCE_RATIO` (default 0.8) of the uniform
//! baseline and that the rebalancer actually reshaped placement.

use std::collections::HashMap;

use taurus_baselines::TaurusExecutor;
use taurus_bench::{bench_config, header, launch_taurus_with, rel, txns_per_conn, JsonReport};
use taurus_common::NodeId;
use taurus_workload::{driver::load_initial, run_workload, ZipfianWorkload};

const ROWS: u64 = 8_000;
const SKEW_THETA: f64 = 0.9;
const SKEW_CHUNKS: u64 = 4;

/// Cumulative per-node heat ops (reads + writes summed across the slices
/// each Page Store hosts).
fn node_ops(taurus: &TaurusExecutor) -> HashMap<NodeId, u64> {
    taurus
        .db
        .master()
        .sal
        .node_heat()
        .into_iter()
        .map(|(n, h)| (n, h.ops()))
        .collect()
}

/// max/mean of the per-node ops delta between two snapshots; 1.0 is a
/// perfectly even spread, higher is more skewed.
fn spread(before: &HashMap<NodeId, u64>, after: &HashMap<NodeId, u64>) -> f64 {
    let deltas: Vec<u64> = after
        .iter()
        .map(|(n, &v)| v.saturating_sub(before.get(n).copied().unwrap_or(0)))
        .collect();
    let sum: u64 = deltas.iter().sum();
    let max = deltas.iter().copied().max().unwrap_or(0);
    if sum == 0 || deltas.is_empty() {
        return 0.0;
    }
    max as f64 / (sum as f64 / deltas.len() as f64)
}

struct ScenarioResult {
    uniform_tps: f64,
    skew_tps: f64,
    /// Per-node ops spread over the final skewed chunk.
    final_spread: f64,
    splits: usize,
    moves: usize,
    merges: usize,
    slices: usize,
    epoch: u64,
}

fn run_scenario(rebalance: bool, conns: usize) -> ScenarioResult {
    // Small slices so the 8k-row dataset spans several of them — the
    // default bench geometry would fit in one slice and leave the
    // placement map nothing to reshape. A storage-bound engine pool makes
    // the hotspot a *storage* hotspot: hot reads miss the pool and land on
    // the hot slice's Page Store replicas, which is the load the
    // rebalancer can actually spread.
    let mut cfg = bench_config(256);
    cfg.pages_per_slice = 64;
    let (db, guard) = launch_taurus_with(cfg).expect("launch taurus");
    let taurus = TaurusExecutor::new(db);
    let mut w = ZipfianWorkload::new(ROWS, 200, 0.0);
    // Read-mostly: under heavy skew a write-heavy mix bottlenecks on
    // engine-level row conflicts, which no storage placement can fix.
    w.write_fraction = 0.2;
    let w = w;
    load_initial(&taurus, &w).expect("load");

    // Phase 1: uniform baseline.
    let uniform = run_workload(&taurus, &w, conns, txns_per_conn(), 21);
    println!("  uniform : {}", uniform.row());
    if rebalance {
        // Prime the rebalancer's heat baseline so skewed-phase deltas are
        // not diluted by the uniform traffic (uniform heat never clears
        // the hot-slice share bar, so this round is a no-op action-wise).
        let _ = taurus.db.run_rebalance_round();
    }

    // Phase 2: dial the skew up mid-run and keep driving traffic.
    w.set_theta(SKEW_THETA);
    let per_chunk = (txns_per_conn() / 2).max(10);
    let mut tps = Vec::new();
    let (mut splits, mut moves, mut merges) = (0, 0, 0);
    let mut before_last = node_ops(&taurus);
    for chunk in 0..SKEW_CHUNKS {
        if chunk + 1 == SKEW_CHUNKS {
            before_last = node_ops(&taurus);
        }
        let r = run_workload(&taurus, &w, conns, per_chunk, 100 + chunk);
        tps.push(r.tps);
        if rebalance {
            match taurus.db.run_rebalance_round() {
                Ok(rep) => {
                    splits += rep.splits;
                    moves += rep.moves;
                    merges += rep.merges;
                    if let Some(a) = &rep.action {
                        println!("  rebalance round {chunk}: {a}");
                    }
                }
                Err(e) => println!("  rebalance round {chunk} failed: {e}"),
            }
        }
    }
    let final_spread = spread(&before_last, &node_ops(&taurus));
    let skew_tps = tps.iter().sum::<f64>() / tps.len() as f64;

    let sal = &taurus.db.master().sal;
    for (key, h) in sal.slice_heat().into_iter().take(5) {
        println!(
            "  slice heat {key}: reads={}({}B) writes={}({}B)",
            h.read_ops, h.read_bytes, h.write_ops, h.write_bytes
        );
    }
    let slices = sal.pages.slices().len();
    let epoch = sal.placement_epoch();
    println!(
        "  skew    : tps={skew_tps:.0} node-spread={final_spread:.2}x \
         slices={slices} epoch={epoch}"
    );
    drop(guard);
    ScenarioResult {
        uniform_tps: uniform.tps,
        skew_tps,
        final_spread,
        splits,
        moves,
        merges,
        slices,
        epoch,
    }
}

fn main() {
    let conns = 8;
    println!("Elastic rebalance — throughput under a mid-run Zipf skew ramp");
    println!("(theta 0 -> {SKEW_THETA}); static placement vs load-aware rebalancer\n");

    header("static placement (rebalancer off)");
    let s = run_scenario(false, conns);
    header("load-aware rebalancer (split/move between chunks)");
    let r = run_scenario(true, conns);

    header("summary");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>10}",
        "scenario", "uniform tps", "skew tps", "node spread", "actions"
    );
    println!(
        "{:<26} {:>12.0} {:>12.0} {:>11.2}x {:>10}",
        "static", s.uniform_tps, s.skew_tps, s.final_spread, "-"
    );
    println!(
        "{:<26} {:>12.0} {:>12.0} {:>11.2}x {:>10}",
        "rebalanced",
        r.uniform_tps,
        r.skew_tps,
        r.final_spread,
        format!("{}s/{}m/{}g", r.splits, r.moves, r.merges)
    );
    println!(
        "  rebalanced vs static under skew: {}",
        rel(r.skew_tps, s.skew_tps)
    );
    println!(
        "  rebalanced skew vs own uniform : {}",
        rel(r.skew_tps, r.uniform_tps)
    );

    let mut json = JsonReport::new();
    for (name, res) in [("static", &s), ("rebalanced", &r)] {
        json.row(vec![
            ("scenario", name.into()),
            ("uniform_tps", res.uniform_tps.into()),
            ("skew_tps", res.skew_tps.into()),
            ("node_spread", res.final_spread.into()),
            ("splits", (res.splits as u64).into()),
            ("moves", (res.moves as u64).into()),
            ("merges", (res.merges as u64).into()),
            ("slices", (res.slices as u64).into()),
            ("placement_epoch", res.epoch.into()),
        ]);
    }
    json.row(vec![
        ("scenario", "summary".into()),
        (
            "skew_ratio_rebalanced_vs_static",
            (r.skew_tps / s.skew_tps.max(1e-9)).into(),
        ),
        (
            "skew_ratio_rebalanced_vs_uniform",
            (r.skew_tps / r.uniform_tps.max(1e-9)).into(),
        ),
    ]);
    if let Err(e) = json.write("rebalance") {
        eprintln!("rebalance: could not write bench_results: {e}");
    }

    if std::env::var("TAURUS_REBALANCE_ASSERT").as_deref() == Ok("1") {
        let bound: f64 = std::env::var("TAURUS_REBALANCE_RATIO")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.8);
        assert!(
            r.splits + r.moves >= 1,
            "rebalancer took no action under theta {SKEW_THETA} skew — the heat \
             signal or the placement operations have regressed"
        );
        // Same-phase, same-host comparison: the skewed phases of the two
        // scenarios run back to back, so their ratio is far more stable
        // than either phase compared against its own uniform warm-up.
        let vs_static = r.skew_tps / s.skew_tps.max(1e-9);
        assert!(
            vs_static >= bound,
            "rebalanced skewed throughput {vs_static:.3}x of static placement \
             < bound {bound:.2}"
        );
        println!(
            "rebalance smoke OK: {} actions, rebalanced/static skew ratio \
             {vs_static:.3} >= {bound:.2}",
            r.splits + r.moves + r.merges
        );
    }
}
