//! Regenerates **Fig. 7**: Taurus vs Amazon-Aurora-style quorum storage on
//! SysBench read-only, SysBench write-only, and TPC-C.
//!
//! The paper reports Taurus ahead in all five benchmarks — slightly (+16%)
//! on read-only, >50% on write-only, up to +160% on TPC-C. In this
//! reproduction both systems run on identical simulated hardware; the only
//! difference is the storage architecture (3/3 Log Stores + wait-for-one
//! Page Stores vs a 6/4 quorum that persists and consolidates the log on
//! all six replicas).

use taurus_baselines::{QuorumEngine, QuorumExecutor, TaurusExecutor};
use taurus_bench::{
    bench_clock, bench_config, header, launch_taurus_with, rel, txns_per_conn, JsonReport,
    ScaleRegime,
};
use taurus_common::config::NetworkProfile;
use taurus_fabric::Fabric;
use taurus_workload::{
    driver::load_initial, driver::DriverReport, run_workload, SysbenchMode, SysbenchWorkload,
    TpccWorkload, Workload,
};

fn run_pair(
    workload: &dyn Workload,
    regime: ScaleRegime,
    conns: usize,
) -> (DriverReport, DriverReport) {
    let (rows, pool) = regime.geometry();
    let _ = rows;
    // Taurus.
    let taurus_cfg = {
        let mut cfg = bench_config(pool);
        cfg.engine_buffer_pool_pages = pool;
        cfg
    };
    let (db, guard) = launch_taurus_with(taurus_cfg.clone()).expect("launch taurus");
    let taurus = TaurusExecutor::new(db);
    load_initial(&taurus, workload).expect("load taurus");
    let t_report = run_workload(&taurus, workload, conns, txns_per_conn(), 7);
    let master = taurus.db.master();
    let sal = &master.sal;
    println!("  taurus SAL: {}", sal.stats.snapshot());
    let (hit_ratio, resident) = master.pool_stats();
    let (prefetched, prefetch_hits) = master.pool_prefetch_stats();
    println!(
        "  taurus pool: hit_ratio={hit_ratio:.2} resident={resident} \
         prefetched={prefetched} prefetch_hits={prefetch_hits}"
    );
    println!(
        "  taurus batched reads: {}",
        sal.read_batch_stats.snapshot()
    );
    for (node, queued, in_flight) in sal.pipeline_gauges() {
        if queued > 0 || in_flight > 0 {
            println!("  taurus SAL pipe {node}: queued={queued} in_flight={in_flight}");
        }
    }
    println!("  taurus dispatcher: {}", sal.dispatch_stats());
    let log = sal.log_stats().snapshot();
    println!("  taurus log store: {log}");
    println!("  taurus page store: {}", taurus.db.pages.store_stats());
    for (key, h) in sal.slice_heat().into_iter().take(4) {
        println!(
            "  taurus slice heat {key}: reads={}({}B) writes={}({}B)",
            h.read_ops, h.read_bytes, h.write_ops, h.write_bytes
        );
    }
    drop(guard);

    // Aurora-style 6/4 quorum on identical hardware profiles.
    let fabric = Fabric::new(bench_clock(), NetworkProfile::default(), 7);
    let cfg = bench_config(pool);
    let engine = QuorumEngine::aurora(fabric, cfg.clone(), cfg.storage).expect("launch aurora");
    let consolidation = engine.cluster().start_background_consolidation();
    let aurora = QuorumExecutor { engine };
    load_initial(&aurora, workload).expect("load aurora");
    let a_report = run_workload(&aurora, workload, conns, txns_per_conn(), 7);
    drop(consolidation);

    println!("  taurus : {}", t_report.row());
    println!("  aurora : {}", a_report.row());
    println!("  taurus vs aurora: {}", rel(t_report.tps, a_report.tps));
    (t_report, a_report)
}

/// CI smoke (`TAURUS_FIG7_ASSERT=1`): on the bench's non-instant network,
/// the mean 3/3 Log Store append ack must cost about one replica round
/// trip (max-of-three), strictly under twice it — serial fan-out would sit
/// at ~3x. Runs single-connection on a quiet cluster, and calibrates the
/// bound on this machine first: `thread::sleep` overshoot dwarfs the
/// simulated microsecond latencies, so a bound computed from the profile
/// alone would be fiction.
fn append_latency_smoke() {
    header("Log Store append smoke: ack latency = max-of-three, not sum");
    let mut cfg = bench_config(4096);
    // A hop big enough that the network model dominates the measurement:
    // at the default 50us hop, thread scheduling noise (~1ms on a busy CI
    // host) swamps the difference between one round trip and three.
    cfg.network.hop_us = 2_000;
    cfg.network.jitter_us = 0;
    let clock = bench_clock();
    let trips = 20u64;
    let t0 = clock.now_us();
    for _ in 0..trips {
        // One replica round trip: request hop, append charge, response hop.
        clock.sleep_us(cfg.network.hop_us);
        clock.sleep_us(cfg.storage.append_us);
        clock.sleep_us(cfg.network.hop_us);
    }
    let single_trip_us = (clock.now_us().saturating_sub(t0) / trips).max(1);

    let (db, guard) = launch_taurus_with(cfg).expect("launch taurus");
    let taurus = TaurusExecutor::new(db);
    let w = SysbenchWorkload::new(SysbenchMode::WriteOnly, 512, 200);
    load_initial(&taurus, &w).expect("load smoke workload");
    let sal = &taurus.db.master().sal;
    sal.log_stats().append_latency.clear();
    let _ = run_workload(&taurus, &w, 1, 150, 11);
    let snap = sal.log_stats().snapshot();
    drop(guard);

    println!("  calibrated single replica trip: {single_trip_us}us");
    println!("  log store: {snap}");
    let mean = snap.append_latency.map(|l| l.mean_us).unwrap_or(f64::MAX);
    let bound = (2 * single_trip_us) as f64;
    assert!(
        mean < bound,
        "mean log append ack {mean:.0}us >= 2x one replica trip ({bound:.0}us) \
         — the 3/3 fan-out is not running in parallel"
    );
    println!("  mean append ack {mean:.0}us < {bound:.0}us: parallel fan-out OK");
}

/// Runs a Taurus-only workload with an explicit config (no baseline) and
/// returns the driver report.
fn run_taurus_only(
    cfg: taurus_common::TaurusConfig,
    workload: &dyn Workload,
    conns: usize,
) -> DriverReport {
    let (db, guard) = launch_taurus_with(cfg).expect("launch taurus");
    let taurus = TaurusExecutor::new(db);
    load_initial(&taurus, workload).expect("load taurus");
    let report = run_workload(&taurus, workload, conns, txns_per_conn(), 7);
    println!("  taurus page store: {}", taurus.db.pages.store_stats());
    drop(guard);
    report
}

/// CI smoke (`TAURUS_FIG7_STORBND_ASSERT=1`), two assertions on the
/// storage-bound read-only benchmark:
///
/// 1. The Taurus/Aurora TPS ratio is computed against the baseline measured
///    **in this run on this host** — never against the committed trail,
///    whose absolute Aurora TPS drifts with host speed (the fig7 "reads
///    <1x while Taurus is unchanged" anomaly).
/// 2. The layered read path's p99 must not be worse than the legacy replay
///    path, measured back-to-back on the same host. Both bounds are
///    env-tunable for noisy runners (`TAURUS_FIG7_STORBND_RATIO`,
///    `TAURUS_FIG7_STORBND_P99_FACTOR`).
fn storage_bound_read_smoke(layered: &DriverReport, aurora: &DriverReport, conns: usize) {
    header("Storage-bound read smoke: same-run ratio + layered read p99");
    let ratio = layered.tps / aurora.tps.max(1e-9);
    let bound: f64 = std::env::var("TAURUS_FIG7_STORBND_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.75);
    assert!(
        ratio >= bound,
        "SysBench read-only (storage-bound): same-run taurus/aurora ratio {ratio:.3} \
         < bound {bound:.2}"
    );
    println!("  same-run storage-bound read ratio {ratio:.3} >= {bound:.2}: OK");

    // Re-run Taurus with the legacy replay consolidation on the same host:
    // the only difference is the Page Store organization, so the comparison
    // isolates what layering buys at the tail.
    let (rows, pool) = ScaleRegime::StorageBound.geometry();
    let w = SysbenchWorkload::new(SysbenchMode::ReadOnly, rows, 200);
    let legacy_cfg = {
        let mut cfg = bench_config(pool);
        cfg.engine_buffer_pool_pages = pool;
        cfg.layered_consolidation = false;
        cfg
    };
    let legacy = run_taurus_only(legacy_cfg, &w, conns);
    let factor: f64 = std::env::var("TAURUS_FIG7_STORBND_P99_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        // Short smoke runs (TAURUS_BENCH_TXNS=25) see ~±10% p99 noise; the
        // factor bounds the regression while the committed EXPERIMENTS.md
        // entry records the measured improvement on full-length runs.
        .unwrap_or(1.15);
    println!(
        "  read p99: layered {}us vs legacy replay {}us (bound {factor:.2}x)",
        layered.p99_latency_us, legacy.p99_latency_us
    );
    assert!(
        (layered.p99_latency_us as f64) <= legacy.p99_latency_us as f64 * factor,
        "storage-bound read p99 regressed: layered {}us > legacy {}us x {factor:.2}",
        layered.p99_latency_us,
        legacy.p99_latency_us
    );
    println!("  layered storage-bound read p99 within bound: OK");
}

fn main() {
    let conns = 8;
    println!("Fig. 7 — Taurus vs Aurora-style quorum storage (throughput)");
    println!("paper shape: Taurus wins everywhere; small margin read-only,");
    println!("large margins write-only and TPC-C\n");

    let mut wins = 0;
    let mut total = 0;
    let mut json = JsonReport::new();
    let mut write_cached_ratio = None;
    let mut storbnd_read: Option<(DriverReport, DriverReport)> = None;

    for (label, mode, regime) in [
        (
            "SysBench read-only, cached dataset",
            SysbenchMode::ReadOnly,
            ScaleRegime::Cached,
        ),
        (
            "SysBench read-only, storage-bound dataset",
            SysbenchMode::ReadOnly,
            ScaleRegime::StorageBound,
        ),
        (
            "SysBench write-only, cached dataset",
            SysbenchMode::WriteOnly,
            ScaleRegime::Cached,
        ),
        (
            "SysBench write-only, storage-bound dataset",
            SysbenchMode::WriteOnly,
            ScaleRegime::StorageBound,
        ),
    ] {
        header(label);
        let (rows, _) = regime.geometry();
        let w = SysbenchWorkload::new(mode, rows, 200);
        let (t, a) = run_pair(&w, regime, conns);
        let ratio = t.tps / a.tps.max(1e-9);
        let mut fields = vec![
            ("benchmark", label.into()),
            ("taurus_tps", t.tps.into()),
            ("aurora_tps", a.tps.into()),
            ("ratio", ratio.into()),
        ];
        if mode == SysbenchMode::WriteOnly {
            // Write-only rows carry commit latency percentiles: the
            // multi-stream group-commit path trades per-commit waits for
            // throughput, and the tail is where that trade would show.
            fields.push(("taurus_commit_p50_us", t.p50_latency_us.into()));
            fields.push(("taurus_commit_p99_us", t.p99_latency_us.into()));
            fields.push(("aurora_commit_p50_us", a.p50_latency_us.into()));
            fields.push(("aurora_commit_p99_us", a.p99_latency_us.into()));
            if regime == ScaleRegime::Cached {
                write_cached_ratio = Some(ratio);
            }
        } else {
            // Read-only rows carry read latency percentiles: the layered
            // consolidation work targets the storage-bound read tail.
            fields.push(("taurus_read_p50_us", t.p50_latency_us.into()));
            fields.push(("taurus_read_p99_us", t.p99_latency_us.into()));
            fields.push(("aurora_read_p50_us", a.p50_latency_us.into()));
            fields.push(("aurora_read_p99_us", a.p99_latency_us.into()));
            if regime == ScaleRegime::StorageBound {
                storbnd_read = Some((t.clone(), a.clone()));
            }
        }
        json.row(fields);
        total += 1;
        if t.tps > a.tps {
            wins += 1;
        }
    }

    header("TPC-C-like");
    let w = TpccWorkload::new(2);
    let (t, a) = run_pair(&w, ScaleRegime::Cached, conns);
    json.row(vec![
        ("benchmark", "TPC-C-like".into()),
        ("taurus_tps", t.tps.into()),
        ("aurora_tps", a.tps.into()),
        ("ratio", (t.tps / a.tps.max(1e-9)).into()),
    ]);
    total += 1;
    if t.tps > a.tps {
        wins += 1;
    }

    println!();
    println!("Summary: Taurus ahead in {wins}/{total} benchmarks (paper: 5/5).");
    if let Err(e) = json.write("fig7") {
        eprintln!("fig7: could not write bench_results: {e}");
    }

    if std::env::var("TAURUS_FIG7_ASSERT").as_deref() == Ok("1") {
        append_latency_smoke();
    }
    if std::env::var("TAURUS_FIG7_WRITE_ASSERT").as_deref() == Ok("1") {
        // Write-only (cached) must beat — or in short smoke runs, at least
        // track — the Aurora baseline. The full-length run clears 1.0x; CI
        // smoke runs few transactions on a noisy shared host, so the bound
        // is env-tunable (default leaves headroom for that noise).
        let bound: f64 = std::env::var("TAURUS_FIG7_WRITE_RATIO")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.9);
        let ratio = write_cached_ratio.expect("write-only cached benchmark ran");
        assert!(
            ratio >= bound,
            "SysBench write-only (cached): taurus/aurora ratio {ratio:.3} < bound {bound:.2} \
             — the parallel group-commit path has regressed"
        );
        println!("write-only cached ratio {ratio:.3} >= {bound:.2}: OK");
    }
    if std::env::var("TAURUS_FIG7_STORBND_ASSERT").as_deref() == Ok("1") {
        let (t, a) = storbnd_read.expect("storage-bound read-only benchmark ran");
        storage_bound_read_smoke(&t, &a, conns);
    }
}
