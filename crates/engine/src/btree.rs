//! The B+tree storage engine.
//!
//! All mutations go through a [`MutCtx`], which fetches working copies of
//! pages, allocates LSNs, **emits physiological log records, and applies
//! them immediately** via the shared `apply_record` path — so the bytes the
//! master materializes are exactly the bytes every replayer (replica, Page
//! Store) will materialize. One engine operation (insert with its splits,
//! delete, …) produces one run of records that the caller packages into an
//! atomic log-record group.
//!
//! Layout:
//! * page 0 — control page: `"hwm"` (next unallocated page id) and
//!   `"root"` (root page id), both 8-byte LE values;
//! * internal pages — cells `(separator key, child page id)`; slot 0 holds
//!   the empty key so every target key has a routing slot;
//! * leaf pages — cells `(key, value)`, chained with sibling links.
//!
//! Deletions do not rebalance (pages may go sparse); this matches the
//! reproduction scope documented in DESIGN.md.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;

use taurus_common::apply::apply_record;
use taurus_common::lsn::LsnAllocator;
use taurus_common::page::{PageType, MAX_CELL_PAYLOAD, SLOT_SIZE};
use taurus_common::record::{LogRecord, RecordBody};
use taurus_common::{Lsn, PageBuf, PageId, Result, TaurusError};

/// Read access to pages, implemented by the master (pool → SAL) and by
/// replicas (pool → versioned Page Store reads).
pub trait PageFetch {
    fn fetch(&self, page: PageId) -> Result<Arc<PageBuf>>;

    /// Hint: the caller expects to `fetch` these pages soon. Batched
    /// fetchers pull the misses in one `ReadPages` round trip; the default
    /// is a no-op, so plain closures and test fetchers are unaffected.
    /// Purely advisory — failures are swallowed and the demand `fetch`
    /// carries the real error handling.
    fn prefetch(&self, _pages: &[PageId]) {}

    /// How many leaves a range scan should read ahead through `prefetch`.
    /// 0 (the default) disables readahead.
    fn readahead_window(&self) -> usize {
        0
    }
}

impl<F> PageFetch for F
where
    F: Fn(PageId) -> Result<Arc<PageBuf>>,
{
    fn fetch(&self, page: PageId) -> Result<Arc<PageBuf>> {
        self(page)
    }
}

/// Leaf readahead state for one range scan: the run of upcoming sibling
/// leaves (harvested from the level-1 internal page during descent) is
/// hinted to the fetcher in window-sized chunks as the scan walks the
/// chain. Crossing off the known run (a level-1 boundary) re-descends for
/// the new leaf's first key to harvest the next run.
struct Readahead<'a> {
    fetch: &'a dyn PageFetch,
    window: usize,
    /// Upcoming leaves in chain order, not yet hinted.
    upcoming: VecDeque<PageId>,
    /// Hinted leaves the scan has not yet walked into, in chain order.
    hinted: VecDeque<PageId>,
}

impl<'a> Readahead<'a> {
    fn new(fetch: &'a dyn PageFetch) -> Self {
        Readahead {
            fetch,
            window: fetch.readahead_window(),
            upcoming: VecDeque::new(),
            hinted: VecDeque::new(),
        }
    }

    /// Harvests the leaves after the routed child of a level-1 internal
    /// page: exactly the siblings a chain walk will visit next.
    fn seed_from_internal(&mut self, page: &PageBuf, route_idx: usize) -> Result<()> {
        if self.window == 0 {
            return Ok(());
        }
        self.upcoming.clear();
        self.hinted.clear();
        for idx in route_idx + 1..page.nslots() {
            self.upcoming.push_back(PageId(cell_u64(page.value(idx)?)?));
        }
        Ok(())
    }

    /// Hints the next chunk once the in-flight hint run falls below half
    /// the window.
    fn refill(&mut self) {
        if self.window == 0 || self.upcoming.is_empty() || self.hinted.len() * 2 > self.window {
            return;
        }
        let take = (self.window - self.hinted.len()).min(self.upcoming.len());
        let chunk: Vec<PageId> = self.upcoming.drain(..take).collect();
        self.fetch.prefetch(&chunk);
        self.hinted.extend(chunk);
    }

    /// The scan crossed the chain into `leaf`. Advances the run, or — when
    /// the leaf is off the known run (a level-1 boundary) — re-descends
    /// from the root for the leaf's first key to harvest the next run.
    fn crossed_into(&mut self, leaf_id: PageId, leaf: &PageBuf) -> Result<()> {
        if self.window == 0 {
            return Ok(());
        }
        if self.hinted.front() == Some(&leaf_id) {
            self.hinted.pop_front();
        } else if self.upcoming.front() == Some(&leaf_id) {
            self.upcoming.pop_front();
        } else {
            self.upcoming.clear();
            self.hinted.clear();
            if leaf.nslots() > 0 {
                let key = leaf.key(0)?.to_vec();
                self.reseed(&key)?;
            }
        }
        self.refill();
        Ok(())
    }

    /// Descends from the root for `key` and harvests the sibling run from
    /// the level-1 page. The internal pages touched are pool-hot, so this
    /// costs no extra round trips.
    fn reseed(&mut self, key: &[u8]) -> Result<()> {
        let mut page = self.fetch.fetch(BTree::root(self.fetch)?)?;
        while page.page_type() == PageType::Internal {
            let idx = BTree::route(&page, key)?;
            if page.level() == 1 {
                return self.seed_from_internal(&page, idx);
            }
            page = self.fetch.fetch(PageId(cell_u64(page.value(idx)?)?))?;
        }
        Ok(())
    }
}

/// Mutation context for one engine operation (or one transaction commit):
/// working copies of touched pages plus the record run produced.
pub struct MutCtx<'a> {
    lsns: &'a LsnAllocator,
    fetch: &'a dyn PageFetch,
    /// Working copies; flushed back to the pool by the caller.
    pub pages: HashMap<PageId, PageBuf>,
    /// Records emitted, in LSN order.
    pub records: Vec<LogRecord>,
}

impl<'a> MutCtx<'a> {
    pub fn new(lsns: &'a LsnAllocator, fetch: &'a dyn PageFetch) -> Self {
        MutCtx {
            lsns,
            fetch,
            pages: HashMap::new(),
            records: Vec::new(),
        }
    }

    /// Working copy of a page, fetched on first touch.
    pub fn page(&mut self, id: PageId) -> Result<&mut PageBuf> {
        use std::collections::hash_map::Entry;
        match self.pages.entry(id) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(v) => {
                let buf = self.fetch.fetch(id)?;
                Ok(v.insert((*buf).clone()))
            }
        }
    }

    /// Emits one record and applies it to the working copy.
    pub fn emit(&mut self, page: PageId, body: RecordBody) -> Result<Lsn> {
        let lsn = self.lsns.alloc();
        let rec = LogRecord::new(lsn, page, body);
        apply_record(self.page(page)?, &rec)?;
        self.records.push(rec);
        Ok(lsn)
    }
}

fn u64_cell(v: u64) -> Bytes {
    Bytes::copy_from_slice(&v.to_le_bytes())
}

fn cell_u64(bytes: &[u8]) -> Result<u64> {
    bytes
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| TaurusError::PageCorrupt("bad u64 cell"))
}

/// Space one record occupies on a page.
fn cell_need(key: &[u8], val: &[u8]) -> usize {
    2 + key.len() + val.len() + SLOT_SIZE
}

/// The B+tree. Stateless: all state lives in pages; this is a namespace of
/// operations over `MutCtx`/`PageFetch`.
pub struct BTree;

impl BTree {
    /// Formats a fresh database: control page plus an empty root leaf.
    /// Emits the bootstrap records into `ctx`.
    pub fn bootstrap(ctx: &mut MutCtx<'_>) -> Result<()> {
        ctx.emit(
            PageId::CONTROL,
            RecordBody::Format {
                ty: PageType::Control,
                level: 0,
            },
        )?;
        ctx.emit(
            PageId::CONTROL,
            RecordBody::Insert {
                idx: 0,
                key: Bytes::from_static(b"hwm"),
                val: u64_cell(2),
            },
        )?;
        ctx.emit(
            PageId::CONTROL,
            RecordBody::Insert {
                idx: 1,
                key: Bytes::from_static(b"root"),
                val: u64_cell(1),
            },
        )?;
        ctx.emit(
            PageId(1),
            RecordBody::Format {
                ty: PageType::Leaf,
                level: 0,
            },
        )?;
        Ok(())
    }

    fn control_get(page: &PageBuf, key: &[u8]) -> Result<u64> {
        match page.search(key) {
            Ok(idx) => cell_u64(page.value(idx)?),
            Err(_) => Err(TaurusError::PageCorrupt("missing control entry")),
        }
    }

    fn control_set(ctx: &mut MutCtx<'_>, key: &'static [u8], v: u64) -> Result<()> {
        let idx = ctx
            .page(PageId::CONTROL)?
            .search(key)
            .map_err(|_| TaurusError::PageCorrupt("missing control entry"))?;
        ctx.emit(
            PageId::CONTROL,
            RecordBody::UpdateValue {
                idx: idx as u16,
                val: u64_cell(v),
            },
        )?;
        Ok(())
    }

    /// Root page id, via any fetcher.
    pub fn root(fetch: &dyn PageFetch) -> Result<PageId> {
        let control = fetch.fetch(PageId::CONTROL)?;
        Ok(PageId(Self::control_get(&control, b"root")?))
    }

    fn alloc_page(ctx: &mut MutCtx<'_>) -> Result<PageId> {
        let hwm = Self::control_get(ctx.page(PageId::CONTROL)?, b"hwm")?;
        Self::control_set(ctx, b"hwm", hwm + 1)?;
        Ok(PageId(hwm))
    }

    /// Routing: index of the child to follow for `key` on an internal page.
    fn route(page: &PageBuf, key: &[u8]) -> Result<usize> {
        match page.search(key) {
            Ok(idx) => Ok(idx),
            Err(0) => Ok(0), // smaller than everything: leftmost child
            Err(idx) => Ok(idx - 1),
        }
    }

    /// Point lookup.
    pub fn get(fetch: &dyn PageFetch, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page = fetch.fetch(Self::root(fetch)?)?;
        loop {
            match page.page_type() {
                PageType::Internal => {
                    let idx = Self::route(&page, key)?;
                    let child = PageId(cell_u64(page.value(idx)?)?);
                    page = fetch.fetch(child)?;
                }
                PageType::Leaf => {
                    return Ok(match page.search(key) {
                        Ok(idx) => Some(page.value(idx)?.to_vec()),
                        Err(_) => None,
                    });
                }
                _ => return Err(TaurusError::PageCorrupt("unexpected page type in tree")),
            }
        }
    }

    /// Range scan: up to `limit` pairs with key ≥ `start`.
    ///
    /// When the fetcher advertises a readahead window, the descent harvests
    /// the upcoming sibling leaves from the level-1 internal page (the
    /// next-level fanout of the range) and the chain walk keeps hinting
    /// them ahead in window-sized chunks, so a batched fetcher turns N
    /// leaf misses into N/window `ReadPages` round trips.
    pub fn scan(
        fetch: &dyn PageFetch,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut ra = Readahead::new(fetch);
        let mut page = fetch.fetch(Self::root(fetch)?)?;
        loop {
            match page.page_type() {
                PageType::Internal => {
                    let idx = Self::route(&page, start)?;
                    if page.level() == 1 {
                        ra.seed_from_internal(&page, idx)?;
                    }
                    let child = PageId(cell_u64(page.value(idx)?)?);
                    page = fetch.fetch(child)?;
                }
                PageType::Leaf => break,
                _ => return Err(TaurusError::PageCorrupt("unexpected page type in tree")),
            }
        }
        ra.refill();
        let mut out = Vec::new();
        let mut idx = match page.search(start) {
            Ok(i) => i,
            Err(i) => i,
        };
        while out.len() < limit {
            if idx >= page.nslots() {
                let next = page.next();
                if next == 0 {
                    break;
                }
                page = fetch.fetch(PageId(next))?;
                ra.crossed_into(PageId(next), &page)?;
                idx = 0;
                continue;
            }
            out.push((page.key(idx)?.to_vec(), page.value(idx)?.to_vec()));
            idx += 1;
        }
        Ok(out)
    }

    /// Insert or update. Returns `true` if the key was new.
    pub fn put(ctx: &mut MutCtx<'_>, key: &[u8], val: &[u8]) -> Result<bool> {
        if key.is_empty() {
            return Err(TaurusError::Internal("empty keys are reserved".into()));
        }
        if key.len() + val.len() > MAX_CELL_PAYLOAD {
            return Err(TaurusError::PageCorrupt("cell exceeds MAX_CELL_PAYLOAD"));
        }
        let root = PageId(Self::control_get(ctx.page(PageId::CONTROL)?, b"root")?);
        let result = Self::put_into(ctx, root, key, val)?;
        if let PutOutcome::Split { sep, right } = result.outcome {
            // Root split: grow the tree by one level.
            let old_root = root;
            let new_root = Self::alloc_page(ctx)?;
            let level = ctx.page(old_root)?.level() + 1;
            ctx.emit(
                new_root,
                RecordBody::Format {
                    ty: PageType::Internal,
                    level,
                },
            )?;
            ctx.emit(
                new_root,
                RecordBody::Insert {
                    idx: 0,
                    key: Bytes::new(),
                    val: u64_cell(old_root.0),
                },
            )?;
            ctx.emit(
                new_root,
                RecordBody::Insert {
                    idx: 1,
                    key: sep,
                    val: u64_cell(right.0),
                },
            )?;
            Self::control_set(ctx, b"root", new_root.0)?;
        }
        Ok(result.inserted)
    }

    /// Delete. Returns `true` if the key existed.
    pub fn delete(ctx: &mut MutCtx<'_>, key: &[u8]) -> Result<bool> {
        let root = PageId(Self::control_get(ctx.page(PageId::CONTROL)?, b"root")?);
        let mut page_id = root;
        loop {
            let page = ctx.page(page_id)?;
            match page.page_type() {
                PageType::Internal => {
                    let idx = Self::route(page, key)?;
                    page_id = PageId(cell_u64(page.value(idx)?)?);
                }
                PageType::Leaf => {
                    let found = page.search(key);
                    return match found {
                        Ok(idx) => {
                            ctx.emit(page_id, RecordBody::Remove { idx: idx as u16 })?;
                            Ok(true)
                        }
                        Err(_) => Ok(false),
                    };
                }
                _ => return Err(TaurusError::PageCorrupt("unexpected page type in tree")),
            }
        }
    }

    fn put_into(
        ctx: &mut MutCtx<'_>,
        page_id: PageId,
        key: &[u8],
        val: &[u8],
    ) -> Result<PutResult> {
        let (page_type, route_child) = {
            let page = ctx.page(page_id)?;
            match page.page_type() {
                PageType::Internal => {
                    let idx = Self::route(page, key)?;
                    (
                        PageType::Internal,
                        Some(PageId(cell_u64(page.value(idx)?)?)),
                    )
                }
                PageType::Leaf => (PageType::Leaf, None),
                _ => return Err(TaurusError::PageCorrupt("unexpected page type in tree")),
            }
        };
        match page_type {
            PageType::Leaf => {
                let page = ctx.page(page_id)?;
                match page.search(key) {
                    Ok(idx) => {
                        ctx.emit(
                            page_id,
                            RecordBody::UpdateValue {
                                idx: idx as u16,
                                val: Bytes::copy_from_slice(val),
                            },
                        )?;
                        Ok(PutResult::plain(false))
                    }
                    Err(idx) => {
                        if page.usable_space() < cell_need(key, val) {
                            let (sep, right) = Self::split(ctx, page_id)?;
                            // Retry on the correct half.
                            let target = if key >= sep.as_ref() { right } else { page_id };
                            let mut r = Self::put_into(ctx, target, key, val)?;
                            debug_assert!(matches!(r.outcome, PutOutcome::Done));
                            r.outcome = PutOutcome::Split { sep, right };
                            Ok(r)
                        } else {
                            ctx.emit(
                                page_id,
                                RecordBody::Insert {
                                    idx: idx as u16,
                                    key: Bytes::copy_from_slice(key),
                                    val: Bytes::copy_from_slice(val),
                                },
                            )?;
                            Ok(PutResult::plain(true))
                        }
                    }
                }
            }
            PageType::Internal => {
                let child = route_child
                    .ok_or(TaurusError::PageCorrupt("internal page has no route child"))?;
                let mut result = Self::put_into(ctx, child, key, val)?;
                if let PutOutcome::Split { sep, right } =
                    std::mem::replace(&mut result.outcome, PutOutcome::Done)
                {
                    // Insert the separator for the new right sibling here.
                    let page = ctx.page(page_id)?;
                    let idx = match page.search(&sep) {
                        Ok(i) => i, // duplicate separator: overwrite route
                        Err(i) => i,
                    };
                    if page.usable_space() < cell_need(&sep, &[0u8; 8]) {
                        let (psep, pright) = Self::split(ctx, page_id)?;
                        let target = if sep >= psep { pright } else { page_id };
                        let tpage = ctx.page(target)?;
                        let tidx = match tpage.search(&sep) {
                            Ok(i) => i,
                            Err(i) => i,
                        };
                        ctx.emit(
                            target,
                            RecordBody::Insert {
                                idx: tidx as u16,
                                key: sep,
                                val: u64_cell(right.0),
                            },
                        )?;
                        result.outcome = PutOutcome::Split {
                            sep: psep,
                            right: pright,
                        };
                    } else {
                        ctx.emit(
                            page_id,
                            RecordBody::Insert {
                                idx: idx as u16,
                                key: sep,
                                val: u64_cell(right.0),
                            },
                        )?;
                    }
                }
                Ok(result)
            }
            _ => unreachable!(),
        }
    }

    /// Splits `left` in half, returning `(separator, right page id)`. Works
    /// for leaves (fixing sibling links) and internal nodes alike.
    fn split(ctx: &mut MutCtx<'_>, left_id: PageId) -> Result<(Bytes, PageId)> {
        let right_id = Self::alloc_page(ctx)?;
        let (ty, level, moved, old_next, left_prev) = {
            let left = ctx.page(left_id)?;
            let n = left.nslots();
            let mid = n / 2;
            let moved: Vec<(Vec<u8>, Vec<u8>)> = (mid..n)
                .map(|i| Ok((left.key(i)?.to_vec(), left.value(i)?.to_vec())))
                .collect::<Result<_>>()?;
            (
                left.page_type(),
                left.level(),
                moved,
                left.next(),
                left.prev(),
            )
        };
        if moved.is_empty() {
            return Err(TaurusError::PageCorrupt("splitting an empty page"));
        }
        let sep = Bytes::copy_from_slice(&moved[0].0);
        ctx.emit(right_id, RecordBody::Format { ty, level })?;
        for (i, (k, v)) in moved.iter().enumerate() {
            ctx.emit(
                right_id,
                RecordBody::Insert {
                    idx: i as u16,
                    key: Bytes::copy_from_slice(k),
                    val: Bytes::copy_from_slice(v),
                },
            )?;
        }
        let mid = {
            let left = ctx.page(left_id)?;
            left.nslots() - moved.len()
        };
        ctx.emit(left_id, RecordBody::TruncateFrom { idx: mid as u16 })?;
        if ty == PageType::Leaf {
            // left <-> right <-> old_next
            ctx.emit(
                right_id,
                RecordBody::SetLinks {
                    next: old_next,
                    prev: left_id.0,
                },
            )?;
            ctx.emit(
                left_id,
                RecordBody::SetLinks {
                    next: right_id.0,
                    prev: left_prev,
                },
            )?;
            if old_next != 0 {
                let nn = ctx.page(PageId(old_next))?.next();
                ctx.emit(
                    PageId(old_next),
                    RecordBody::SetLinks {
                        next: nn,
                        prev: right_id.0,
                    },
                )?;
            }
        }
        Ok((sep, right_id))
    }
}

struct PutResult {
    inserted: bool,
    outcome: PutOutcome,
}

impl PutResult {
    fn plain(inserted: bool) -> Self {
        PutResult {
            inserted,
            outcome: PutOutcome::Done,
        }
    }
}

enum PutOutcome {
    Done,
    Split { sep: Bytes, right: PageId },
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// In-memory page store for pure tree-logic tests: the fetcher reads
    /// from a shared map, the test applies ctx working copies back.
    #[derive(Default)]
    struct MemPages {
        map: Mutex<HashMap<PageId, Arc<PageBuf>>>,
    }

    impl MemPages {
        fn fetcher(&self) -> impl PageFetch + '_ {
            move |id: PageId| -> Result<Arc<PageBuf>> {
                Ok(self
                    .map
                    .lock()
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| Arc::new(PageBuf::new())))
            }
        }

        fn absorb(&self, ctx: MutCtx<'_>) -> Vec<LogRecord> {
            let mut map = self.map.lock();
            for (id, page) in ctx.pages {
                map.insert(id, Arc::new(page));
            }
            ctx.records
        }
    }

    fn setup() -> (MemPages, LsnAllocator) {
        let pages = MemPages::default();
        let lsns = LsnAllocator::new(Lsn::ZERO);
        {
            let f = pages.fetcher();
            let mut ctx = MutCtx::new(&lsns, &f);
            BTree::bootstrap(&mut ctx).unwrap();
            pages.absorb(ctx);
        }
        (pages, lsns)
    }

    fn put(pages: &MemPages, lsns: &LsnAllocator, k: &[u8], v: &[u8]) -> Vec<LogRecord> {
        let f = pages.fetcher();
        let mut ctx = MutCtx::new(lsns, &f);
        BTree::put(&mut ctx, k, v).unwrap();
        pages.absorb(ctx)
    }

    fn get(pages: &MemPages, k: &[u8]) -> Option<Vec<u8>> {
        BTree::get(&pages.fetcher(), k).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let (pages, lsns) = setup();
        put(&pages, &lsns, b"hello", b"world");
        assert_eq!(get(&pages, b"hello"), Some(b"world".to_vec()));
        assert_eq!(get(&pages, b"missing"), None);
    }

    #[test]
    fn update_replaces_value() {
        let (pages, lsns) = setup();
        put(&pages, &lsns, b"k", b"v1");
        put(&pages, &lsns, b"k", b"v2");
        assert_eq!(get(&pages, b"k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn delete_removes_key() {
        let (pages, lsns) = setup();
        put(&pages, &lsns, b"k", b"v");
        let f = pages.fetcher();
        let mut ctx = MutCtx::new(&lsns, &f);
        assert!(BTree::delete(&mut ctx, b"k").unwrap());
        assert!(!BTree::delete(&mut ctx, b"nothing").unwrap());
        pages.absorb(ctx);
        assert_eq!(get(&pages, b"k"), None);
    }

    #[test]
    fn many_inserts_force_splits_and_stay_readable() {
        let (pages, lsns) = setup();
        let n = 2000u32;
        for i in 0..n {
            let k = format!("key{:08}", i * 7 % n);
            let v = format!("value-{i:06}-{}", "x".repeat(64));
            put(&pages, &lsns, k.as_bytes(), v.as_bytes());
        }
        // The tree must have grown beyond one leaf.
        let root = BTree::root(&pages.fetcher()).unwrap();
        let root_page = pages.fetcher().fetch(root).unwrap();
        assert_eq!(root_page.page_type(), PageType::Internal);
        for i in (0..n).step_by(97) {
            let k = format!("key{:08}", i * 7 % n);
            assert!(get(&pages, k.as_bytes()).is_some(), "{k}");
        }
    }

    #[test]
    fn scan_walks_leaf_chain_in_order() {
        let (pages, lsns) = setup();
        for i in 0..500u32 {
            let k = format!("k{:06}", i);
            put(&pages, &lsns, k.as_bytes(), b"v");
        }
        let all = BTree::scan(&pages.fetcher(), b"k", 10_000).unwrap();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted order");
        // Mid-range scan.
        let mid = BTree::scan(&pages.fetcher(), b"k000100", 5).unwrap();
        assert_eq!(mid[0].0, b"k000100".to_vec());
        assert_eq!(mid.len(), 5);
    }

    /// MemPages-backed fetcher that advertises a readahead window and
    /// records every hinted page id.
    struct RecordingFetcher<'a> {
        pages: &'a MemPages,
        window: usize,
        hinted: Mutex<Vec<PageId>>,
    }

    impl PageFetch for RecordingFetcher<'_> {
        fn fetch(&self, id: PageId) -> Result<Arc<PageBuf>> {
            self.pages.fetcher().fetch(id)
        }
        fn prefetch(&self, pages: &[PageId]) {
            self.hinted.lock().extend_from_slice(pages);
        }
        fn readahead_window(&self) -> usize {
            self.window
        }
    }

    #[test]
    fn scan_readahead_hints_the_leaf_chain_without_changing_results() {
        let (pages, lsns) = setup();
        for i in 0..800u32 {
            let k = format!("k{:06}", i);
            put(&pages, &lsns, k.as_bytes(), &[b'v'; 48]);
        }
        let plain = BTree::scan(&pages.fetcher(), b"", 10_000).unwrap();
        let rf = RecordingFetcher {
            pages: &pages,
            window: 4,
            hinted: Mutex::new(Vec::new()),
        };
        let with_ra = BTree::scan(&rf, b"", 10_000).unwrap();
        assert_eq!(plain, with_ra, "readahead must not change scan results");
        let hinted = rf.hinted.lock();
        // The table spans many leaves; the walk must have hinted ahead,
        // and every hint must be a real leaf of the chain.
        assert!(hinted.len() > 4, "only {} hints", hinted.len());
        for &p in hinted.iter() {
            let page = pages.fetcher().fetch(p).unwrap();
            assert_eq!(page.page_type(), PageType::Leaf, "hinted {p:?}");
        }
        // A zero-window fetcher never hints.
        let none = RecordingFetcher {
            pages: &pages,
            window: 0,
            hinted: Mutex::new(Vec::new()),
        };
        BTree::scan(&none, b"", 10_000).unwrap();
        assert!(none.hinted.lock().is_empty());
    }

    #[test]
    fn replaying_emitted_records_reproduces_identical_pages() {
        // The end-to-end guarantee: a replica replaying the record stream
        // materializes byte-identical pages.
        let (pages, lsns) = setup();
        let mut log: Vec<LogRecord> = Vec::new();
        for i in 0..800u32 {
            let k = format!("key{:05}", i);
            log.extend(put(
                &pages,
                &lsns,
                k.as_bytes(),
                format!("val{i}").as_bytes(),
            ));
        }
        // Replay everything (insert order) on a fresh page map. We need the
        // bootstrap records as well, so rebuild them with the same LSNs the
        // setup used (1..=4).
        let mut replica: HashMap<PageId, PageBuf> = HashMap::new();
        let bl = LsnAllocator::new(Lsn::ZERO);
        let bf = MemPages::default();
        let bff = bf.fetcher();
        let mut bctx = MutCtx::new(&bl, &bff);
        BTree::bootstrap(&mut bctx).unwrap();
        let bootstrap_records = bctx.records.clone();
        for rec in bootstrap_records.iter().chain(log.iter()) {
            let page = replica.entry(rec.page).or_default();
            apply_record(page, rec).unwrap();
        }
        // Compare every page byte-for-byte.
        let master = pages.map.lock();
        for (id, mpage) in master.iter() {
            let rpage = replica.get(id).unwrap_or_else(|| panic!("missing {id}"));
            assert_eq!(mpage.as_bytes(), rpage.as_bytes(), "page {id} differs");
        }
    }

    #[test]
    fn oversized_and_empty_keys_are_rejected() {
        let (pages, lsns) = setup();
        let f = pages.fetcher();
        let mut ctx = MutCtx::new(&lsns, &f);
        assert!(BTree::put(&mut ctx, b"", b"v").is_err());
        let huge = vec![0u8; MAX_CELL_PAYLOAD + 1];
        assert!(BTree::put(&mut ctx, b"k", &huge).is_err());
    }

    #[test]
    fn keys_smaller_than_any_separator_still_route() {
        let (pages, lsns) = setup();
        // Force splits with large keys, then insert a tiny key.
        for i in 0..1500u32 {
            let k = format!("zz{:06}", i);
            put(&pages, &lsns, k.as_bytes(), &[b'v'; 64]);
        }
        put(&pages, &lsns, b"a", b"first");
        assert_eq!(get(&pages, b"a"), Some(b"first".to_vec()));
        let all = BTree::scan(&pages.fetcher(), b"", 2).unwrap();
        assert_eq!(all[0].0, b"a".to_vec());
    }
}
