//! Cross-crate integration tests: the paper's Fig. 4 recovery scenarios
//! driven through the full public stack (TaurusDb), plus durability
//! invariants under combined failures and log truncation.

// Harness code: aborting on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use taurus::common::clock::ManualClock;
use taurus::prelude::*;

fn launch(clock: Arc<ManualClock>) -> Arc<TaurusDb> {
    let cfg = TaurusConfig {
        log_buffer_bytes: 1,
        slice_buffer_bytes: 1,
        ..TaurusConfig::test()
    };
    TaurusDb::launch_with_clock(cfg, 6, 8, clock, 99).unwrap()
}

fn settle(db: &TaurusDb) {
    let master = db.master();
    master.sal.flush_all_slices();
    for _ in 0..300 {
        master.maintain();
        if master.sal.cv_lsn() == master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

fn put(db: &TaurusDb, k: &str, v: &str) {
    let master = db.master();
    let mut t = master.begin();
    t.put(k.as_bytes(), v.as_bytes()).unwrap();
    t.commit().unwrap();
}

#[test]
fn fig4a_short_term_failure_repaired_by_gossip_through_recovery_service() {
    let clock = ManualClock::shared();
    let db = launch(clock);
    put(&db, "r1", "v");
    settle(&db);
    let master = db.master();
    let slice = master.sal.slice_keys()[0];
    let replica3 = db.pages.replicas_of(slice)[2];
    // Short-term outage misses a write.
    db.fabric.set_down(replica3);
    let down_report = db.run_recovery_round(); // detector registers the outage
    assert_eq!(down_report.short_term_failures, 1, "{down_report:?}");
    put(&db, "r2", "v");
    settle(&db);
    db.fabric.set_up(replica3);
    // The recovery service notices the node returned and triggers gossip.
    let report = db.run_recovery_round();
    assert!(report.gossip_triggered >= 1, "{report:?}");
    let compute = master.sal.me;
    assert_eq!(
        db.pages
            .persistent_lsn_of(replica3, compute, slice)
            .unwrap(),
        master.sal.durable_lsn()
    );
}

#[test]
fn fig4b_rebuild_from_lagging_donor_heals_via_logstore_resend() {
    let clock = ManualClock::shared();
    let db = launch(Arc::clone(&clock));
    put(&db, "r1", "v");
    settle(&db);
    let master = db.master();
    let slice = master.sal.slice_keys()[0];
    let replicas = db.pages.replicas_of(slice);
    // r2, r3 offline; record 2 lands only on r1 and is dismissed.
    db.fabric.set_down(replicas[1]);
    db.fabric.set_down(replicas[2]);
    put(&db, "r2", "v");
    settle(&db);
    db.fabric.set_up(replicas[1]);
    db.fabric.set_up(replicas[2]);
    let _ = db.run_recovery_round();
    // r1 dies for good before gossip copies record 2 anywhere.
    db.fabric.set_down(replicas[0]);
    clock.advance(db.cfg.short_term_failure_us + 1);
    let report = db.run_recovery_round();
    assert_eq!(report.long_term_failures, 1, "{report:?}");
    assert_eq!(report.slices_rebuilt, 1, "{report:?}");
    // More rounds: regression detection + Log Store resend heal the slice.
    for _ in 0..3 {
        let _ = db.run_recovery_round();
    }
    let compute = master.sal.me;
    for node in db.pages.replicas_of(slice) {
        assert_eq!(
            db.pages.persistent_lsn_of(node, compute, slice).unwrap(),
            master.sal.durable_lsn(),
            "replica {node} not healed"
        );
    }
    // And the data is all there.
    assert!(master.get(b"r1").unwrap().is_some());
    assert!(master.get(b"r2").unwrap().is_some());
}

#[test]
fn fig4c_hole_on_all_replicas_healed_by_recovery_rounds() {
    let clock = ManualClock::shared();
    let db = launch(Arc::clone(&clock));
    put(&db, "r1", "v");
    settle(&db);
    let master = db.master();
    let slice = master.sal.slice_keys()[0];
    let replicas = db.pages.replicas_of(slice);
    // Record 2 reaches nobody.
    for &r in &replicas {
        db.fabric.set_down(r);
    }
    put(&db, "r2", "v");
    master.sal.flush_all_slices();
    std::thread::sleep(std::time::Duration::from_millis(5));
    for &r in &replicas {
        db.fabric.set_up(r);
    }
    // Record 3 reaches everyone, chained past the hole.
    put(&db, "r3", "v");
    settle(&db);
    // The recovery service detects the stall, gossip can't help, the Log
    // Store resend fills the hole.
    clock.advance(db.cfg.lag_repair_timeout_us + 1);
    let mut healed = false;
    for _ in 0..4 {
        let _ = db.run_recovery_round();
        let compute = master.sal.me;
        if db.pages.replicas_of(slice).iter().all(|&n| {
            db.pages.persistent_lsn_of(n, compute, slice).unwrap() == master.sal.durable_lsn()
        }) {
            healed = true;
            break;
        }
        clock.advance(db.cfg.lag_repair_timeout_us + 1);
    }
    assert!(healed, "hole was never repaired");
    assert!(master.get(b"r2").unwrap().is_some());
}

#[test]
fn committed_data_survives_arbitrary_failure_storm() {
    let clock = ManualClock::shared();
    let db = launch(Arc::clone(&clock));
    let mut committed = Vec::new();
    // Alternate writes with failure injection across tiers.
    for round in 0..6u32 {
        for i in 0..10u32 {
            let k = format!("key-{round}-{i}");
            put(&db, &k, "v");
            committed.push(k);
        }
        match round % 3 {
            0 => {
                let n = db.fabric.healthy_nodes(NodeKind::LogStore)[0];
                db.fabric.set_down(n);
            }
            1 => {
                let n = db.fabric.healthy_nodes(NodeKind::PageStore)[0];
                db.fabric.set_down(n);
            }
            _ => {
                // Bring everything back and run recovery.
                for n in db.fabric.all_nodes(NodeKind::LogStore) {
                    db.fabric.set_up(n);
                }
                for n in db.fabric.all_nodes(NodeKind::PageStore) {
                    db.fabric.set_up(n);
                }
                let _ = db.run_recovery_round();
            }
        }
    }
    for n in db.fabric.all_nodes(NodeKind::LogStore) {
        db.fabric.set_up(n);
    }
    for n in db.fabric.all_nodes(NodeKind::PageStore) {
        db.fabric.set_up(n);
    }
    settle(&db);
    let _ = db.run_recovery_round();
    // Crash the master for good measure.
    db.crash_and_recover_master().unwrap();
    let master = db.master();
    for k in &committed {
        assert!(
            master.get(k.as_bytes()).unwrap().is_some(),
            "committed key {k} lost"
        );
    }
}

#[test]
fn truncated_log_never_strands_data() {
    let clock = ManualClock::shared();
    let cfg = TaurusConfig {
        log_buffer_bytes: 1,
        slice_buffer_bytes: 1,
        plog_size_limit: 2 << 10,
        ..TaurusConfig::test()
    };
    let db = TaurusDb::launch_with_clock(cfg, 5, 6, clock, 4).unwrap();
    for i in 0..120u32 {
        put(&db, &format!("k{i:04}"), "v");
    }
    settle(&db);
    let report = db.run_recovery_round();
    assert!(
        report.plogs_truncated > 0,
        "log should have truncated: {report:?}"
    );
    // After truncation a master crash must still recover everything:
    // whatever left the log is on all three Page Store replicas.
    db.crash_and_recover_master().unwrap();
    let master = db.master();
    for i in (0..120u32).step_by(7) {
        assert!(master.get(format!("k{i:04}").as_bytes()).unwrap().is_some());
    }
}

#[test]
fn write_availability_through_mass_log_store_failure() {
    let clock = ManualClock::shared();
    let db = launch(clock);
    put(&db, "before", "v");
    // Kill half of the Log Store fleet: writes must keep committing as long
    // as three healthy nodes remain (the paper's headline claim).
    let nodes = db.fabric.healthy_nodes(NodeKind::LogStore);
    for &n in &nodes[..3] {
        db.fabric.set_down(n);
    }
    for i in 0..20u32 {
        put(&db, &format!("during{i}"), "v");
    }
    settle(&db);
    let master = db.master();
    assert!(master.get(b"during0").unwrap().is_some());
    assert!(master.get(b"during19").unwrap().is_some());
}
