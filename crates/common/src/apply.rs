//! The single shared redo-application path.
//!
//! [`apply_record`] is the function behind "the log is the database": the
//! master's buffer pool applies records as it generates them, read replicas
//! apply records they pull from the Log Stores, and Page Store consolidation
//! applies records to base pages. All three call this exact function, so all
//! three always materialize bit-identical page versions.
//!
//! Application is **idempotent**: a record whose LSN is not newer than the
//! page's current LSN is skipped. This is what makes the SAL's recovery
//! resend safe ("Page Stores disregard log records that they have already
//! received", paper §5.3).

use crate::error::Result;
use crate::lsn::Lsn;
use crate::page::PageBuf;
use crate::record::{LogRecord, RecordBody};

/// Outcome of applying one record to a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The record mutated the page and advanced its LSN.
    Applied,
    /// The record's LSN was not newer than the page LSN; nothing changed.
    SkippedStale,
}

/// Applies `record` to `page` if it is newer than the page's current version.
///
/// On success the page's LSN equals `record.lsn`. Transaction control
/// records (`TxnCommit`/`TxnAbort`) only bump the version of their target
/// (control) page — their payload is interpreted by replicas, not by pages.
pub fn apply_record(page: &mut PageBuf, record: &LogRecord) -> Result<ApplyOutcome> {
    if record.lsn <= page.lsn() {
        return Ok(ApplyOutcome::SkippedStale);
    }
    match &record.body {
        RecordBody::Format { ty, level } => page.format(*ty, *level),
        RecordBody::Insert { idx, key, val } => page.insert(*idx as usize, key, val)?,
        RecordBody::Remove { idx } => page.remove(*idx as usize)?,
        RecordBody::UpdateValue { idx, val } => page.update_value(*idx as usize, val)?,
        RecordBody::TruncateFrom { idx } => page.truncate_from(*idx as usize)?,
        RecordBody::SetLinks { next, prev } => page.set_links(*next, *prev),
        RecordBody::PageImage { image } => {
            *page = PageBuf::from_bytes(image)?;
        }
        RecordBody::TxnCommit { .. } | RecordBody::TxnAbort { .. } => {}
    }
    page.set_lsn(record.lsn);
    Ok(ApplyOutcome::Applied)
}

/// Applies an LSN-ordered run of records to a page, stopping at `as_of`
/// (inclusive). Returns the page LSN after application.
///
/// This is the Page Store consolidation inner loop: given a base page version
/// and its chain of log records, materialize the version a reader asked for.
pub fn apply_chain<'a, I>(page: &mut PageBuf, records: I, as_of: Lsn) -> Result<Lsn>
where
    I: IntoIterator<Item = &'a LogRecord>,
{
    for rec in records {
        if rec.lsn > as_of {
            break;
        }
        apply_record(page, rec)?;
    }
    Ok(page.lsn())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;
    use crate::page::PageType;
    use bytes::Bytes;

    fn rec(lsn: u64, body: RecordBody) -> LogRecord {
        LogRecord::new(Lsn(lsn), PageId(1), body)
    }

    fn format_rec(lsn: u64) -> LogRecord {
        rec(
            lsn,
            RecordBody::Format {
                ty: PageType::Leaf,
                level: 0,
            },
        )
    }

    fn insert_rec(lsn: u64, idx: u16, key: &'static [u8], val: &'static [u8]) -> LogRecord {
        rec(
            lsn,
            RecordBody::Insert {
                idx,
                key: Bytes::from_static(key),
                val: Bytes::from_static(val),
            },
        )
    }

    #[test]
    fn apply_advances_page_lsn() {
        let mut p = PageBuf::new();
        assert_eq!(
            apply_record(&mut p, &format_rec(1)).unwrap(),
            ApplyOutcome::Applied
        );
        assert_eq!(p.lsn(), Lsn(1));
        apply_record(&mut p, &insert_rec(2, 0, b"k", b"v")).unwrap();
        assert_eq!(p.lsn(), Lsn(2));
        assert_eq!(p.key(0).unwrap(), b"k");
    }

    #[test]
    fn stale_and_duplicate_records_are_skipped() {
        let mut p = PageBuf::new();
        apply_record(&mut p, &format_rec(1)).unwrap();
        apply_record(&mut p, &insert_rec(2, 0, b"k", b"v")).unwrap();
        // Re-delivery of the same record must be a no-op (idempotence).
        assert_eq!(
            apply_record(&mut p, &insert_rec(2, 0, b"k", b"v")).unwrap(),
            ApplyOutcome::SkippedStale
        );
        assert_eq!(p.nslots(), 1);
        // An older record must also be skipped.
        assert_eq!(
            apply_record(&mut p, &format_rec(1)).unwrap(),
            ApplyOutcome::SkippedStale
        );
        assert_eq!(p.nslots(), 1);
    }

    #[test]
    fn chain_application_stops_at_requested_version() {
        let chain = vec![
            format_rec(1),
            insert_rec(2, 0, b"a", b"1"),
            insert_rec(3, 1, b"b", b"2"),
            insert_rec(4, 2, b"c", b"3"),
        ];
        let mut p = PageBuf::new();
        let lsn = apply_chain(&mut p, &chain, Lsn(3)).unwrap();
        assert_eq!(lsn, Lsn(3));
        assert_eq!(p.nslots(), 2);

        // Continue the same chain to the end: idempotent prefix, new suffix.
        let lsn = apply_chain(&mut p, &chain, Lsn::MAX).unwrap();
        assert_eq!(lsn, Lsn(4));
        assert_eq!(p.nslots(), 3);
    }

    #[test]
    fn txn_control_records_only_bump_version() {
        let mut p = PageBuf::new();
        apply_record(&mut p, &format_rec(1)).unwrap();
        let before = p.nslots();
        apply_record(
            &mut p,
            &rec(
                2,
                RecordBody::TxnCommit {
                    txn: crate::TxnId(9),
                },
            ),
        )
        .unwrap();
        assert_eq!(p.nslots(), before);
        assert_eq!(p.lsn(), Lsn(2));
    }

    #[test]
    fn page_image_record_replaces_page() {
        let mut donor = PageBuf::new();
        donor.format(PageType::Leaf, 0);
        donor.insert(0, b"x", b"y").unwrap();
        donor.set_lsn(Lsn(5));
        let image = Bytes::copy_from_slice(donor.as_bytes());

        let mut p = PageBuf::new();
        apply_record(&mut p, &rec(6, RecordBody::PageImage { image })).unwrap();
        assert_eq!(p.key(0).unwrap(), b"x");
        // The image's embedded LSN (5) is overridden by the record's LSN (6).
        assert_eq!(p.lsn(), Lsn(6));
    }

    #[test]
    fn identical_replay_produces_identical_bytes() {
        // The core guarantee: two independent replayers converge bit-for-bit.
        let chain = vec![
            format_rec(1),
            insert_rec(2, 0, b"b", b"2"),
            insert_rec(3, 0, b"a", b"1"),
            rec(4, RecordBody::Remove { idx: 1 }),
            rec(
                5,
                RecordBody::UpdateValue {
                    idx: 0,
                    val: Bytes::from_static(b"new"),
                },
            ),
            rec(6, RecordBody::SetLinks { next: 8, prev: 2 }),
        ];
        let mut master = PageBuf::new();
        let mut replica = PageBuf::new();
        for r in &chain {
            apply_record(&mut master, r).unwrap();
        }
        // Replica sees duplicates and re-deliveries.
        for r in chain.iter().chain(chain.iter()) {
            apply_record(&mut replica, r).unwrap();
        }
        assert_eq!(master, replica);
        assert_eq!(master.as_bytes(), replica.as_bytes());
    }
}
