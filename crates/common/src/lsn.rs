//! Log sequence numbers.
//!
//! An [`Lsn`] is a monotonically increasing logical sequence number that
//! uniquely identifies and orders every change to a database (paper §3.4).
//! Page versions are identified by `(PageId, Lsn)`; the Storage Abstraction
//! Layer tracks several derived LSNs (cluster-visible, slice flush, slice
//! persistent, database persistent, recycle) that are all plain [`Lsn`]s.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A log sequence number. `Lsn::ZERO` sorts before every real record; the
/// first record a database produces has LSN 1.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN: "before any change". Used as the initial persistent,
    /// visible, and recycle LSN of a fresh database.
    pub const ZERO: Lsn = Lsn(0);
    /// Largest representable LSN; used as a sentinel upper bound.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// The LSN immediately after this one.
    #[inline]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }

    /// Saturating predecessor, never underflowing below [`Lsn::ZERO`].
    #[inline]
    pub fn prev(self) -> Lsn {
        Lsn(self.0.saturating_sub(1))
    }

    /// Whether this LSN denotes an actual record (i.e. is non-zero).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Lsn {
    fn from(v: u64) -> Self {
        Lsn(v)
    }
}

/// Thread-safe monotone LSN allocator used by the master to version changes.
///
/// The master is the only component that mints LSNs (paper §3.4: "the master
/// assigns the page a version, a monotonically increasing logical sequence
/// number").
#[derive(Debug)]
pub struct LsnAllocator {
    next: AtomicU64,
}

impl LsnAllocator {
    /// Creates an allocator whose first allocated LSN is `start.next()`.
    pub fn new(start: Lsn) -> Self {
        LsnAllocator {
            next: AtomicU64::new(start.0 + 1),
        }
    }

    /// Allocates the next single LSN.
    pub fn alloc(&self) -> Lsn {
        Lsn(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a dense run of `n` LSNs, returning the first. The run is
    /// `first ..= first + n - 1`.
    pub fn alloc_run(&self, n: u64) -> Lsn {
        Lsn(self.next.fetch_add(n, Ordering::Relaxed))
    }

    /// The highest LSN handed out so far (ZERO if none).
    pub fn last_allocated(&self) -> Lsn {
        Lsn(self.next.load(Ordering::Relaxed) - 1)
    }
}

/// A shared watermark: a monotonically advancing LSN cell (e.g. CV-LSN,
/// replica-visible LSN). Advancing to a smaller value is a no-op, which makes
/// concurrent publication race-free.
#[derive(Debug, Default)]
pub struct LsnWatermark {
    value: AtomicU64,
}

impl LsnWatermark {
    pub fn new(initial: Lsn) -> Self {
        LsnWatermark {
            value: AtomicU64::new(initial.0),
        }
    }

    /// Current value of the watermark.
    pub fn get(&self) -> Lsn {
        Lsn(self.value.load(Ordering::Acquire))
    }

    /// Advance the watermark to `to` if that moves it forward. Returns `true`
    /// if the stored value changed.
    pub fn advance(&self, to: Lsn) -> bool {
        self.value.fetch_max(to.0, Ordering::AcqRel) < to.0
    }

    /// Force-set the watermark (used only by recovery when reconstructing
    /// state; normal operation must use [`LsnWatermark::advance`]).
    pub fn reset(&self, to: Lsn) {
        self.value.store(to.0, Ordering::Release);
    }
}

/// Per-stream durable frontier for multi-stream parallel logging (the
/// "LSN-vector" of the lightweight parallel-logging design): one monotone
/// watermark per log stream, advanced lock-free by whichever flush worker
/// completes its replicated append.
///
/// The vector alone does not define the commit point — the SAL's commit
/// rule is that `durable_lsn` advances only over the contiguous prefix of
/// flush spans, in LSN order, regardless of which stream carried each span.
/// The vector records how far each stream has *individually* made its spans
/// durable, so the prefix walk can assert (and tests can observe) that the
/// global durable LSN never overtakes the stream that carried it.
#[derive(Debug)]
pub struct LsnVector {
    streams: Vec<LsnWatermark>,
}

impl LsnVector {
    /// A vector of `n` stream frontiers, all at [`Lsn::ZERO`].
    pub fn new(n: usize) -> Self {
        LsnVector {
            streams: (0..n).map(|_| LsnWatermark::new(Lsn::ZERO)).collect(),
        }
    }

    /// Number of streams tracked.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the vector tracks no streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Advances stream `i`'s frontier to `to` (monotone; no-op if behind).
    pub fn advance(&self, i: usize, to: Lsn) -> bool {
        self.streams[i].advance(to)
    }

    /// Current frontier of stream `i`.
    pub fn get(&self, i: usize) -> Lsn {
        self.streams[i].get()
    }

    /// Point-in-time copy of every stream frontier.
    pub fn snapshot(&self) -> Vec<Lsn> {
        self.streams.iter().map(|w| w.get()).collect()
    }

    /// Highest frontier across all streams (ZERO when empty).
    pub fn max(&self) -> Lsn {
        self.streams
            .iter()
            .map(|w| w.get())
            .max()
            .unwrap_or(Lsn::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_navigation() {
        assert!(Lsn::ZERO < Lsn(1));
        assert_eq!(Lsn(5).next(), Lsn(6));
        assert_eq!(Lsn(5).prev(), Lsn(4));
        assert_eq!(Lsn::ZERO.prev(), Lsn::ZERO);
        assert!(!Lsn::ZERO.is_valid());
        assert!(Lsn(1).is_valid());
    }

    #[test]
    fn allocator_is_dense_and_monotone() {
        let a = LsnAllocator::new(Lsn::ZERO);
        assert_eq!(a.alloc(), Lsn(1));
        assert_eq!(a.alloc(), Lsn(2));
        let run = a.alloc_run(10);
        assert_eq!(run, Lsn(3));
        assert_eq!(a.alloc(), Lsn(13));
        assert_eq!(a.last_allocated(), Lsn(13));
    }

    #[test]
    fn allocator_resumes_from_recovered_lsn() {
        let a = LsnAllocator::new(Lsn(100));
        assert_eq!(a.alloc(), Lsn(101));
    }

    #[test]
    fn watermark_only_moves_forward() {
        let w = LsnWatermark::new(Lsn(10));
        assert!(w.advance(Lsn(20)));
        assert!(!w.advance(Lsn(15)));
        assert_eq!(w.get(), Lsn(20));
        assert!(!w.advance(Lsn(20)));
        w.reset(Lsn(5));
        assert_eq!(w.get(), Lsn(5));
    }

    #[test]
    fn watermark_concurrent_advance() {
        use std::sync::Arc;
        let w = Arc::new(LsnWatermark::new(Lsn::ZERO));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        w.advance(Lsn(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.get(), Lsn(7999));
    }
}
