//! Property-based tests of Log Store invariants: PLog content equality
//! across replicas under arbitrary failure schedules, stream rollover
//! correctness, and truncation safety.

// Test harness: panicking on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use bytes::Bytes;
use proptest::prelude::*;

use taurus_common::clock::ManualClock;
use taurus_common::config::{NetworkProfile, StorageProfile};
use taurus_common::page::PageType;
use taurus_common::record::{LogRecord, LogRecordGroup, RecordBody};
use taurus_common::{DbId, Lsn, NodeId, PageId};
use taurus_fabric::{Fabric, NodeKind};
use taurus_logstore::{LogStoreCluster, LogStream};

fn setup(nodes: usize, plog_limit: usize) -> (LogStream, LogStoreCluster, NodeId) {
    let fabric = Fabric::new(ManualClock::shared(), NetworkProfile::instant(), 3);
    let me = fabric.add_node(NodeKind::Compute);
    let cluster = LogStoreCluster::new(fabric, 3, 1 << 20);
    cluster.spawn_servers(nodes, StorageProfile::instant());
    let stream = LogStream::create(cluster.clone(), DbId(1), me, plog_limit, 4).unwrap();
    (stream, cluster, me)
}

fn group(first: u64, len: u64) -> (Bytes, Lsn, Lsn) {
    let records: Vec<LogRecord> = (first..first + len)
        .map(|l| {
            LogRecord::new(
                Lsn(l),
                PageId(l % 7),
                RecordBody::Format {
                    ty: PageType::Leaf,
                    level: 0,
                },
            )
        })
        .collect();
    let g = LogRecordGroup::new(DbId(1), records);
    (g.encode(), Lsn(first), Lsn(first + len - 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under an arbitrary schedule of single-node outages between appends,
    /// every append either succeeds durably or the whole run fails — and
    /// everything acknowledged is readable afterwards, in order, exactly
    /// once.
    #[test]
    fn acknowledged_groups_always_readable_in_order(
        group_sizes in prop::collection::vec(1u64..5, 1..25),
        outage_schedule in prop::collection::vec(any::<Option<bool>>(), 1..25),
        plog_limit in 256usize..4096,
    ) {
        let (stream, cluster, _) = setup(7, plog_limit);
        let mut next_lsn = 1u64;
        let mut acked: Vec<(Lsn, Lsn)> = Vec::new();
        for (i, &len) in group_sizes.iter().enumerate() {
            // Toggle one storage node per step according to the schedule.
            if let Some(Some(down)) = outage_schedule.get(i) {
                let all = cluster.fabric.all_nodes(NodeKind::LogStore);
                let victim = all[i % all.len()];
                if *down {
                    cluster.fabric.set_down(victim);
                } else {
                    cluster.fabric.set_up(victim);
                }
            }
            let (data, first, last) = group(next_lsn, len);
            if stream.append_group(data, first, last).is_ok() {
                acked.push((first, last));
                next_lsn += len;
            } else {
                // Give up this iteration; with >=3 healthy of 7 this should
                // not happen (at most 1 down at a time in this schedule).
                break;
            }
        }
        // Restore everything and read back.
        for n in cluster.fabric.all_nodes(NodeKind::LogStore) {
            cluster.fabric.set_up(n);
        }
        let groups = stream.read_groups_from(Lsn(1)).unwrap();
        prop_assert_eq!(groups.len(), acked.len());
        for (g, (first, last)) in groups.iter().zip(&acked) {
            prop_assert_eq!(g.first_lsn(), *first);
            prop_assert_eq!(g.end_lsn(), *last);
        }
    }

    /// Truncation never deletes a group at or above the cut point, and a
    /// reopened stream agrees with the survivor set.
    #[test]
    fn truncation_is_safe_and_survives_reopen(
        n_groups in 4u64..30,
        cut in 1u64..60,
        plog_limit in 200usize..1200,
    ) {
        let (stream, cluster, me) = setup(5, plog_limit);
        let mut next = 1u64;
        for _ in 0..n_groups {
            let (data, first, last) = group(next, 2);
            stream.append_group(data, first, last).unwrap();
            next += 2;
        }
        let cut = Lsn(cut.min(next - 1));
        stream.truncate_below(cut).unwrap();
        let survivors = stream.read_groups_from(Lsn(1)).unwrap();
        // Every group ending at or after the cut must still be present.
        let expected: Vec<u64> = (0..n_groups)
            .map(|i| 1 + i * 2 + 1) // end lsn of group i
            .filter(|&end| Lsn(end) >= cut)
            .collect();
        let got: Vec<u64> = survivors.iter().map(|g| g.end_lsn().0).collect();
        for e in &expected {
            prop_assert!(got.contains(e), "group ending at {e} lost (cut {cut})");
        }
        // Reopen from metadata: identical view.
        drop(stream);
        let reopened = LogStream::open(cluster, DbId(1), me, plog_limit, 4).unwrap();
        let got2: Vec<u64> = reopened
            .read_groups_from(Lsn(1))
            .unwrap()
            .iter()
            .map(|g| g.end_lsn().0)
            .collect();
        prop_assert_eq!(got, got2);
    }

    /// All three replicas of every PLog hold byte-identical committed data.
    #[test]
    fn replicas_are_byte_identical(n_groups in 1u64..20, plog_limit in 200usize..2000) {
        let (stream, cluster, _) = setup(6, plog_limit);
        let mut next = 1u64;
        for _ in 0..n_groups {
            let (data, first, last) = group(next, 3);
            stream.append_group(data, first, last).unwrap();
            next += 3;
        }
        for entry in stream.entries() {
            let replicas = cluster.replicas_of(entry.id);
            if replicas.is_empty() {
                continue;
            }
            let committed = cluster.committed_len(entry.id) as usize;
            let mut contents = Vec::new();
            for node in replicas {
                let server = cluster.server_handle(node).unwrap();
                let data = server.read_from(entry.id, 0).unwrap();
                contents.push(data.slice(0..committed.min(data.len())));
            }
            for w in contents.windows(2) {
                prop_assert_eq!(&w[0], &w[1], "replica divergence in {}", entry.id);
            }
        }
    }
}
