//! `taurus-lint` — workspace convention checker.
//!
//! ```text
//! taurus-lint [--root DIR] [--json] [--quiet] [--no-lockgraph]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` under the root (default: the current
//! directory, falling back to the workspace the binary was built from),
//! runs both the line-level convention rules and the `lockgraph`
//! lock-discipline analysis, prints `file:line: [rule] message` diagnostics
//! plus a summary, and exits 1 if any violation is found, 2 on usage or I/O
//! errors, 0 when clean. `--json` swaps the human output for one
//! machine-readable JSON object; `--no-lockgraph` skips the lock analysis.

use std::path::PathBuf;
use std::process::ExitCode;

use taurus_verify::lint::lint_workspace;
use taurus_verify::lockgraph::analyze_workspace;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut quiet = false;
    let mut lockgraph = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("taurus-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--no-lockgraph" => lockgraph = false,
            "--help" | "-h" => {
                eprintln!("usage: taurus-lint [--root DIR] [--json] [--quiet] [--no-lockgraph]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("taurus-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            // Fall back to the workspace this binary was compiled in.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(cwd)
        }
    });

    let mut report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("taurus-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if lockgraph {
        match analyze_workspace(&root) {
            Ok(a) => {
                report.diagnostics.extend(a.report.diagnostics);
                report.suppressed += a.report.suppressed;
                report.diagnostics.sort_by(|a, b| {
                    (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule))
                });
            }
            Err(e) => {
                eprintln!(
                    "taurus-lint: lockgraph scan failed under {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    if json {
        println!("{}", report.to_json());
    } else {
        if !quiet {
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
        let by_rule = report.by_rule();
        let rule_summary: Vec<String> = by_rule
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        println!(
            "taurus-lint: {} violation(s), {} suppressed, {} file(s) scanned{}",
            report.diagnostics.len(),
            report.suppressed,
            report.files_scanned,
            if rule_summary.is_empty() {
                String::new()
            } else {
                format!(" ({})", rule_summary.join(", "))
            }
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
