//! Read-replica fan-out: several replicas tail the shared log, serve
//! snapshot reads at their TV-LSNs, and one gets promoted to master —
//! the paper's §6 workflow end to end.
//!
//! Run with: `cargo run --example read_replicas`

// Harness code: aborting on setup failure is the desired behavior.
#![allow(clippy::unwrap_used)]

use taurus::prelude::*;

fn main() -> Result<()> {
    let db = TaurusDb::launch(TaurusConfig::default(), 5, 6)?;
    let guard = db.start_background(300);
    let master = db.master();

    // Seed a small table.
    let mut t = master.begin();
    for i in 0..100u32 {
        t.put(
            format!("item:{i:03}").as_bytes(),
            format!("v{i}").as_bytes(),
        )?;
    }
    t.commit()?;

    println!("== adding three read replicas (no data copy: they just tail the log) ==");
    let replicas: Vec<_> = (0..3).map(|_| db.add_replica().unwrap()).collect();
    for _ in 0..200 {
        db.maintain();
        if replicas
            .iter()
            .all(|r| r.visible_lsn() >= master.sal.durable_lsn())
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for r in &replicas {
        println!(
            "  replica {} visible LSN {} — item:050 = {:?}",
            r.id,
            r.visible_lsn(),
            r.get(b"item:050")?
                .map(|v| String::from_utf8_lossy(&v).into_owned())
        );
    }

    println!("\n== snapshot isolation on a replica (TV-LSN pinning) ==");
    let snap = replicas[0].begin();
    println!("  snapshot pinned at TV-LSN {}", snap.tv_lsn());
    let mut t = master.begin();
    t.put(b"item:050", b"UPDATED")?;
    t.commit()?;
    for _ in 0..200 {
        db.maintain();
        if replicas[0].visible_lsn() >= master.sal.durable_lsn() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    println!(
        "  pinned snapshot still reads: {:?}",
        snap.get(b"item:050")?
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    let fresh = replicas[0].begin();
    println!(
        "  fresh transaction reads:     {:?}",
        fresh
            .get(b"item:050")?
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    drop(snap);
    drop(fresh);

    println!("\n== replicas reject writes ==");
    match replicas[1].put(b"item:000", b"nope") {
        Err(TaurusError::ReadOnlyReplica) => println!("  write rejected, as it must be"),
        other => println!("  unexpected: {other:?}"),
    }

    println!("\n== failover: promote replica 0 to master ==");
    drop(guard); // quiesce background before the switch
    db.promote_replica(0)?;
    let new_master = db.master();
    println!(
        "  new master serves reads: item:050 = {:?}",
        new_master
            .get(b"item:050")?
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    let mut t = new_master.begin();
    t.put(b"item:100", b"written-after-failover")?;
    t.commit()?;
    println!("  and accepts writes: item:100 committed");
    println!(
        "  remaining replicas follow the new master: {}",
        db.replicas().len()
    );
    Ok(())
}
