//! The engine buffer pool.
//!
//! A straightforward LRU pool of page frames with one Taurus-specific rule:
//! "a dirty page cannot be evicted until all of its log records have been
//! written to at least one Page Store replica. Thus, until the latest log
//! record reaches a Page Store, the corresponding page is guaranteed to be
//! available from the buffer pool" (paper §4.2). The guard is a callback so
//! the master wires it to `Sal::can_evict` and replicas (whose pages are
//! never authoritative) use a constant.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use taurus_common::metrics::HitRate;
use taurus_common::{Lsn, PageBuf, PageId};

/// One cached page frame. `Arc<PageBuf>` lets readers share a snapshot
/// without copying 8 KiB; writers use copy-on-write.
#[derive(Clone, Debug)]
pub struct Frame {
    pub buf: Arc<PageBuf>,
    /// LSN of the newest record applied to this frame.
    pub lsn: Lsn,
    /// True while the newest record may not yet be on any Page Store.
    pub dirty: bool,
    last_access: u64,
}

impl Frame {
    pub fn new(buf: Arc<PageBuf>, lsn: Lsn, dirty: bool) -> Self {
        Frame {
            buf,
            lsn,
            dirty,
            last_access: 0,
        }
    }
}

/// LRU pool with the Taurus dirty-page eviction constraint.
pub struct EnginePool {
    capacity: usize,
    frames: Mutex<(HashMap<PageId, Frame>, u64)>,
    pub stats: HitRate,
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl EnginePool {
    pub fn new(capacity: usize) -> Self {
        EnginePool {
            capacity: capacity.max(1),
            frames: Mutex::new((HashMap::new(), 0)),
            stats: HitRate::new(),
        }
    }

    /// Fetches a frame if cached.
    pub fn get(&self, page: PageId) -> Option<Frame> {
        let mut guard = self.frames.lock();
        let (frames, tick) = &mut *guard;
        *tick += 1;
        let t = *tick;
        match frames.get_mut(&page) {
            Some(f) => {
                f.last_access = t;
                self.stats.hits.inc();
                Some(f.clone())
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Installs (or replaces) a frame, evicting per LRU while respecting the
    /// dirty-page rule via `can_evict(page, lsn)`. Dirty frames that cannot
    /// be evicted are skipped; the pool may temporarily exceed capacity when
    /// everything is pinned by the rule (the paper's guarantee demands it).
    pub fn put(&self, page: PageId, frame: Frame, can_evict: &dyn Fn(PageId, Lsn) -> bool) {
        let mut guard = self.frames.lock();
        let (frames, tick) = &mut *guard;
        *tick += 1;
        let t = *tick;
        let mut f = frame;
        f.last_access = t;
        frames.insert(page, f);
        while frames.len() > self.capacity {
            // LRU order among evictable frames only.
            let victim = frames
                .iter()
                .filter(|(p, f)| **p != page && (!f.dirty || can_evict(**p, f.lsn)))
                .min_by_key(|(_, f)| f.last_access)
                .map(|(p, _)| *p);
            match victim {
                Some(p) => {
                    frames.remove(&p);
                }
                None => break, // everything pinned: allow overflow
            }
        }
    }

    /// Marks a page clean once its records reached a Page Store (the master
    /// sweeps this lazily from `Sal::can_evict`).
    pub fn mark_clean_upto(&self, can_evict: &dyn Fn(PageId, Lsn) -> bool) {
        let mut guard = self.frames.lock();
        for (p, f) in guard.0.iter_mut() {
            if f.dirty && can_evict(*p, f.lsn) {
                f.dirty = false;
            }
        }
    }

    /// Removes a frame (replica cache invalidation).
    pub fn remove(&self, page: PageId) {
        self.frames.lock().0.remove(&page);
    }

    pub fn len(&self) -> usize {
        self.frames.lock().0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the pool (used when a promoted replica re-syncs).
    pub fn clear(&self) {
        self.frames.lock().0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(lsn: u64, dirty: bool) -> Frame {
        Frame::new(Arc::new(PageBuf::new()), Lsn(lsn), dirty)
    }

    fn always(_: PageId, _: Lsn) -> bool {
        true
    }
    fn never(_: PageId, _: Lsn) -> bool {
        false
    }

    #[test]
    fn lru_eviction_of_clean_pages() {
        let pool = EnginePool::new(8);
        for i in 0..10u64 {
            pool.put(PageId(i), frame(i, false), &always);
        }
        // Earliest inserted (least recently used) pages are gone.
        assert!(pool.get(PageId(0)).is_none());
        assert!(pool.get(PageId(9)).is_some());
        assert_eq!(pool.len(), 8);
    }

    #[test]
    fn unacked_dirty_pages_are_never_evicted() {
        let pool = EnginePool::new(8);
        for i in 0..8u64 {
            pool.put(PageId(i), frame(i, true), &never);
        }
        // Pool is full of pinned dirty pages: adding more overflows rather
        // than violating the rule.
        for i in 8..12u64 {
            pool.put(PageId(i), frame(i, true), &never);
        }
        assert_eq!(pool.len(), 12);
        for i in 0..12u64 {
            assert!(pool.get(PageId(i)).is_some(), "page {i} must be pinned");
        }
    }

    #[test]
    fn acked_dirty_pages_become_evictable() {
        let pool = EnginePool::new(4);
        for i in 0..4u64 {
            pool.put(PageId(i), frame(i, true), &never);
        }
        // Records up to LSN 1 reached a Page Store.
        let acked = |_: PageId, lsn: Lsn| lsn <= Lsn(1);
        pool.put(PageId(9), frame(9, false), &acked);
        assert_eq!(pool.len(), 4);
        // One of pages 0/1 was evicted; pages 2 and 3 remain pinned.
        assert!(pool.get(PageId(2)).is_some());
        assert!(pool.get(PageId(3)).is_some());
        assert!(pool.get(PageId(9)).is_some());
    }

    #[test]
    fn mark_clean_sweep() {
        let pool = EnginePool::new(8);
        pool.put(PageId(1), frame(5, true), &always);
        pool.mark_clean_upto(&|_, lsn| lsn <= Lsn(5));
        assert!(!pool.get(PageId(1)).unwrap().dirty);
    }

    #[test]
    fn hit_miss_accounting() {
        let pool = EnginePool::new(8);
        assert!(pool.get(PageId(1)).is_none());
        pool.put(PageId(1), frame(1, false), &always);
        assert!(pool.get(PageId(1)).is_some());
        assert_eq!(pool.stats.hits.get(), 1);
        assert_eq!(pool.stats.misses.get(), 1);
    }
}
