//! The master (primary) front end: the only writer in a Taurus database.
//!
//! Transactions buffer their writes privately and emit all redo at commit as
//! one atomic log-record group ending in `TxnCommit` — so every group
//! boundary is a physically *and* logically consistent point (paper §6).
//! Write-write conflicts abort the second writer (first-updater-wins).
//! Commit durability is exactly the paper's: the transaction is acknowledged
//! once its group is on all three Log Stores ([`taurus_core::Sal::flush`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use taurus_common::lsn::{LsnAllocator, LsnWatermark};
use taurus_common::record::{LogRecordGroup, RecordBody};
use taurus_common::scan::{ScanAccumulator, ScanRequest};
use taurus_common::{Lsn, PageBuf, PageId, Result, SliceKey, TaurusError, TxnId};
use taurus_core::{Sal, TableScan};

use crate::btree::{BTree, MutCtx, PageFetch};
use crate::pool::{EnginePool, Frame};

/// The master → read-replica message board (paper §6 step 2): instead of
/// streaming log data, the master publishes *where the log is* (implicitly:
/// the Log Stores) and the LSN horizons replicas may advance to. Each update
/// carries a sequence number so a replica can detect missed messages and
/// re-request full state.
#[derive(Debug, Default)]
pub struct Bulletin {
    /// Highest LSN durable on the Log Stores.
    pub durable_lsn: LsnWatermark,
    /// Minimum per-slice acked LSN: replicas must not let their visible LSN
    /// pass this, or Page Stores could not serve their reads (§6).
    pub read_horizon: LsnWatermark,
    /// Message sequence number.
    pub seq: AtomicU64,
    /// Backchannel: each replica's minimum transaction-visible LSN, feeding the
    /// recycle LSN (§6).
    replica_min_tv: Mutex<HashMap<usize, Lsn>>,
}

impl Bulletin {
    /// Minimum TV-LSN across replicas (None when no replica registered).
    pub fn min_replica_tv(&self) -> Option<Lsn> {
        self.replica_min_tv.lock().values().copied().min()
    }

    /// Called by replica `id` to publish its minimum TV-LSN.
    pub fn publish_min_tv(&self, id: usize, lsn: Lsn) {
        self.replica_min_tv.lock().insert(id, lsn);
    }

    pub fn forget_replica(&self, id: usize) {
        self.replica_min_tv.lock().remove(&id);
    }
}

/// The master engine.
pub struct MasterEngine {
    pub sal: Arc<Sal>,
    pub lsns: LsnAllocator,
    pool: EnginePool,
    /// Structure latch: transactions apply their page changes exclusively;
    /// readers descend under the shared side, so they never observe a
    /// half-applied multi-page operation (the master-side equivalent of the
    /// replicas' group-boundary rule).
    tree_latch: RwLock<()>,
    /// First-updater-wins write locks.
    key_locks: Mutex<HashMap<Vec<u8>, TxnId>>,
    next_txn: AtomicU64,
    maintain_beats: AtomicU64,
    pub bulletin: Arc<Bulletin>,
}

impl std::fmt::Debug for MasterEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterEngine")
            .field("db", &self.sal.db)
            .field("durable", &self.sal.durable_lsn())
            .finish()
    }
}

impl MasterEngine {
    /// Bootstraps a fresh database through the SAL: control page + root
    /// leaf, durably logged.
    pub fn bootstrap(sal: Arc<Sal>) -> Result<Arc<MasterEngine>> {
        let engine = Arc::new(MasterEngine {
            pool: EnginePool::with_shards(
                sal.cfg.engine_buffer_pool_pages,
                sal.cfg.engine_pool_shards,
            ),
            lsns: LsnAllocator::new(Lsn::ZERO),
            tree_latch: RwLock::new(()),
            key_locks: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
            maintain_beats: AtomicU64::new(0),
            bulletin: Arc::new(Bulletin::default()),
            sal,
        });
        {
            let fetch = engine.fetcher();
            let mut ctx = MutCtx::new(&engine.lsns, &fetch);
            BTree::bootstrap(&mut ctx)?;
            let group = LogRecordGroup::new(engine.sal.db, ctx.records.clone());
            engine.install_pages(ctx.pages);
            engine.sal.log_group(group)?;
        }
        engine.sal.flush()?;
        engine.publish();
        Ok(engine)
    }

    /// Attaches a master to an already-recovered SAL (crash restart or
    /// replica promotion). `max_lsn` is the recovery end point returned by
    /// [`Sal::recover`].
    pub fn resume(sal: Arc<Sal>, max_lsn: Lsn) -> Arc<MasterEngine> {
        let engine = Arc::new(MasterEngine {
            pool: EnginePool::with_shards(
                sal.cfg.engine_buffer_pool_pages,
                sal.cfg.engine_pool_shards,
            ),
            lsns: LsnAllocator::new(max_lsn),
            tree_latch: RwLock::new(()),
            key_locks: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
            maintain_beats: AtomicU64::new(0),
            bulletin: Arc::new(Bulletin::default()),
            sal,
        });
        engine.publish();
        engine
    }

    /// Eviction guard for one pool operation: pool eviction scans consult
    /// the guard for every candidate frame, so the per-slice acked LSN is
    /// memoized for the duration of the operation instead of taking the SAL
    /// state lock per frame.
    fn evict_guard(&self) -> impl Fn(PageId, taurus_common::Lsn) -> bool + '_ {
        let cache = std::cell::RefCell::new(HashMap::<SliceKey, taurus_common::Lsn>::new());
        move |p: PageId, l: taurus_common::Lsn| {
            // Memoize by the *owning* slice (placement-routed): after a
            // split, pages of one arithmetic slice span several slices with
            // different acked LSNs.
            let slice = self
                .sal
                .pages
                .route_write(self.sal.db, p, self.sal.cfg.pages_per_slice);
            let mut cache = cache.borrow_mut();
            let acked = *cache
                .entry(slice)
                .or_insert_with(|| self.sal.slice_acked_lsn(p));
            acked >= l
        }
    }

    /// Pool-then-storage page fetch, with batched readahead: scan prefetch
    /// hints turn pool misses into one `Sal::read_pages` call.
    fn fetcher(&self) -> MasterFetcher<'_> {
        MasterFetcher { engine: self }
    }

    fn install_pages(&self, pages: HashMap<PageId, PageBuf>) {
        let guard = self.evict_guard();
        for (id, page) in pages {
            let lsn = page.lsn();
            self.pool
                .put(id, Frame::new(Arc::new(page), lsn, true), &guard);
        }
    }

    /// Publishes fresh horizons to read replicas (one paper-§6 message).
    pub fn publish(&self) {
        self.bulletin.durable_lsn.advance(self.sal.durable_lsn());
        self.bulletin.read_horizon.advance(self.sal.min_acked_lsn());
        self.bulletin.seq.fetch_add(1, Ordering::Relaxed);
    }

    /// Periodic maintenance: slice-buffer timeout flushes, dirty-frame
    /// sweep, replica-driven recycle LSN, bulletin refresh.
    pub fn maintain(&self) {
        self.sal.tick();
        let beat = self.maintain_beats.fetch_add(1, Ordering::Relaxed);
        // The clean sweep scans the whole pool under its lock; doing it on
        // every beat would contend with the read hot path, so amortize it.
        if beat.is_multiple_of(16) {
            self.pool.mark_clean_upto(&|p, l| self.sal.can_evict(p, l));
            if let Some(min_tv) = self.bulletin.min_replica_tv() {
                self.sal.set_recycle_lsn(min_tv);
            }
        }
        self.publish();
    }

    /// Starts a read-write transaction.
    pub fn begin(self: &Arc<Self>) -> Txn {
        Txn {
            engine: Arc::clone(self),
            id: TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed)),
            writes: BTreeMap::new(),
            locked: Vec::new(),
            finished: false,
        }
    }

    /// Auto-commit point read (read-committed).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _shared = self.tree_latch.read();
        BTree::get(&self.fetcher(), key)
    }

    /// Auto-commit range scan.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let _shared = self.tree_latch.read();
        BTree::scan(&self.fetcher(), start, limit)
    }

    /// Pushed-down table scan at the current durable LSN (NDP follow-on
    /// paper): the SAL plans one `ScanSlice` call per slice and the Page
    /// Stores evaluate the operator next to the data. When the storage
    /// layer cannot serve the scan at all, falls back to an engine-local
    /// B-tree traversal through the *same* shared evaluator, so results
    /// are identical either way.
    pub fn scan_pushdown(&self, req: &ScanRequest) -> Result<TableScan> {
        let as_of = self.sal.durable_lsn();
        match self.sal.scan_pushdown(req, as_of) {
            Ok(scan) => Ok(scan),
            Err(_) => self.scan_local(req),
        }
    }

    /// Pushed-down scan against a named snapshot's pinned LSN.
    pub fn snapshot_scan_pushdown(&self, name: &str, req: &ScanRequest) -> Result<TableScan> {
        let lsn = self
            .sal
            .snapshot_lsn(name)
            .ok_or_else(|| TaurusError::Internal(format!("no snapshot named {name}")))?;
        self.sal.scan_pushdown(req, lsn)
    }

    /// Fetch-and-filter fallback: full B-tree scan through the engine pool
    /// folded through the shared evaluator.
    fn scan_local(&self, req: &ScanRequest) -> Result<TableScan> {
        let _shared = self.tree_latch.read();
        let rows = BTree::scan(&self.fetcher(), &req.start, usize::MAX)?;
        let mut acc = ScanAccumulator::default();
        for (key, value) in rows {
            acc.rows_scanned += 1;
            if req.matches(&key, &value) {
                acc.add(req, &key, &value);
            }
        }
        Ok(TableScan {
            rows: acc.rows,
            agg: acc.agg,
            pushdown_slices: 0,
            fallback_slices: 1,
        })
    }

    /// Creates a named snapshot of the database at the current durable LSN.
    /// Constant-time: append-only Page Stores keep every version at or
    /// above the recycle LSN, so a snapshot is just a pinned LSN.
    pub fn create_snapshot(&self, name: &str) -> Lsn {
        self.sal.create_snapshot(name)
    }

    /// Point read against a named snapshot (versioned Page Store reads).
    pub fn snapshot_get(&self, name: &str, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let lsn = self
            .sal
            .snapshot_lsn(name)
            .ok_or_else(|| TaurusError::Internal(format!("no snapshot named {name}")))?;
        let fetch = SnapshotFetcher::new(&self.sal, lsn, self.sal.cfg.btree_readahead_window);
        BTree::get(&fetch, key)
    }

    /// Range scan against a named snapshot.
    pub fn snapshot_scan(
        &self,
        name: &str,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let lsn = self
            .sal
            .snapshot_lsn(name)
            .ok_or_else(|| TaurusError::Internal(format!("no snapshot named {name}")))?;
        let fetch = SnapshotFetcher::new(&self.sal, lsn, self.sal.cfg.btree_readahead_window);
        BTree::scan(&fetch, start, limit)
    }

    /// Drops a named snapshot.
    pub fn drop_snapshot(&self, name: &str) -> bool {
        self.sal.drop_snapshot(name)
    }

    /// Engine pool statistics (hit ratio, resident frames).
    pub fn pool_stats(&self) -> (f64, usize) {
        (self.pool.stats.ratio(), self.pool.len())
    }

    /// Readahead accounting: `(frames installed speculatively, frames that
    /// later served a demand access)`; the difference is wasted prefetch.
    pub fn pool_prefetch_stats(&self) -> (u64, u64) {
        self.pool.prefetch_stats()
    }

    /// Batched read of `ids` through the pool at the live (acked) LSN:
    /// cached pages are served from their shards, the misses travel in one
    /// `Sal::read_pages` call. Used by tests and benches to pin the batched
    /// miss path directly.
    pub fn get_pages(&self, ids: &[PageId]) -> Result<Vec<(PageId, Arc<PageBuf>)>> {
        let _shared = self.tree_latch.read();
        // taurus-lint: allow(lock-across-fabric-call) -- batched fetch-on-miss runs under the shared latch by design (readahead consistency);
        self.pool.get_or_fetch_many(
            ids,
            // taurus-lint: allow(lock-across-fabric-call) -- Page Store read handlers take no engine locks, so no cycle -- latency only
            &|miss| self.sal.read_pages(miss, None),
            &self.evict_guard(),
        )
    }

    fn release_locks(&self, txn: TxnId, keys: &[Vec<u8>]) {
        let mut locks = self.key_locks.lock();
        for k in keys {
            if locks.get(k) == Some(&txn) {
                locks.remove(k);
            }
        }
    }
}

/// The master's live page fetcher. Demand fetches go pool → storage and warm
/// the pool with the clean frame; readahead hints from B-tree scans install
/// absent pages through one batched [`Sal::read_pages`] call. Both paths run
/// under the tree latch (shared for reads, exclusive for commits), so a
/// speculative install can never clobber a dirtier frame raced in by a
/// committing transaction.
struct MasterFetcher<'a> {
    engine: &'a MasterEngine,
}

impl PageFetch for MasterFetcher<'_> {
    fn fetch(&self, id: PageId) -> Result<Arc<PageBuf>> {
        let engine = self.engine;
        if let Some(frame) = engine.pool.get(id) {
            return Ok(frame.buf);
        }
        let buf = Arc::new(engine.sal.read_page(id, None)?);
        engine.pool.put(
            id,
            Frame::new(Arc::clone(&buf), buf.lsn(), false),
            &engine.evict_guard(),
        );
        Ok(buf)
    }

    fn prefetch(&self, pages: &[PageId]) {
        let engine = self.engine;
        engine.pool.prefetch_absent(
            pages,
            &|miss| engine.sal.read_pages(miss, None),
            &engine.evict_guard(),
        );
    }

    fn readahead_window(&self) -> usize {
        self.engine.sal.cfg.btree_readahead_window
    }
}

/// Bound on the per-traversal snapshot page cache: generous enough for a full
/// readahead window plus the descent spine, tiny next to the engine pool.
const SNAPSHOT_CACHE_PAGES: usize = 512;

/// Fetcher for reads against a pinned snapshot LSN. Pages materialized at an
/// old version must **never** warm the shared engine pool (a later live read
/// would see stale data), so batched prefetches land in a private
/// per-traversal cache that dies with the fetcher.
struct SnapshotFetcher<'a> {
    sal: &'a Sal,
    lsn: Lsn,
    window: usize,
    cache: std::cell::RefCell<HashMap<PageId, Arc<PageBuf>>>,
}

impl<'a> SnapshotFetcher<'a> {
    fn new(sal: &'a Sal, lsn: Lsn, window: usize) -> Self {
        SnapshotFetcher {
            sal,
            lsn,
            window,
            cache: std::cell::RefCell::new(HashMap::new()),
        }
    }

    fn remember(cache: &mut HashMap<PageId, Arc<PageBuf>>, id: PageId, buf: Arc<PageBuf>) {
        if cache.len() >= SNAPSHOT_CACHE_PAGES {
            cache.clear();
        }
        cache.insert(id, buf);
    }
}

impl PageFetch for SnapshotFetcher<'_> {
    fn fetch(&self, id: PageId) -> Result<Arc<PageBuf>> {
        if let Some(buf) = self.cache.borrow().get(&id) {
            return Ok(Arc::clone(buf));
        }
        let buf = Arc::new(self.sal.read_page(id, Some(self.lsn))?);
        Self::remember(&mut self.cache.borrow_mut(), id, Arc::clone(&buf));
        Ok(buf)
    }

    fn prefetch(&self, pages: &[PageId]) {
        let missing: Vec<PageId> = {
            let cache = self.cache.borrow();
            pages
                .iter()
                .copied()
                .filter(|p| !cache.contains_key(p))
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        // Speculative: a failed batch just falls back to demand fetches.
        if let Ok(got) = self.sal.read_pages(&missing, Some(self.lsn)) {
            let mut cache = self.cache.borrow_mut();
            for (id, buf) in got {
                Self::remember(&mut cache, id, Arc::new(buf));
            }
        }
    }

    fn readahead_window(&self) -> usize {
        self.window
    }
}

/// A read-write transaction on the master.
pub struct Txn {
    engine: Arc<MasterEngine>,
    pub id: TxnId,
    /// Private write buffer: key → Some(value) for put, None for delete.
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    locked: Vec<Vec<u8>>,
    finished: bool,
}

impl Txn {
    fn check_open(&self) -> Result<()> {
        if self.finished {
            Err(TaurusError::TxnFinished)
        } else {
            Ok(())
        }
    }

    fn lock_key(&mut self, key: &[u8]) -> Result<()> {
        if self.writes.contains_key(key) {
            return Ok(()); // already ours
        }
        let mut locks = self.engine.key_locks.lock();
        match locks.get(key) {
            Some(owner) if *owner != self.id => Err(TaurusError::WriteConflict {
                page: PageId::CONTROL,
            }),
            Some(_) => Ok(()),
            None => {
                locks.insert(key.to_vec(), self.id);
                self.locked.push(key.to_vec());
                Ok(())
            }
        }
    }

    /// Read-your-writes lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_open()?;
        if let Some(v) = self.writes.get(key) {
            return Ok(v.clone());
        }
        self.engine.get(key)
    }

    /// `SELECT ... FOR UPDATE`: takes the key's write lock *before* reading,
    /// so a read-modify-write cycle on the key is free of lost updates.
    pub fn get_for_update(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_open()?;
        self.lock_key(key)?;
        if let Some(v) = self.writes.get(key) {
            return Ok(v.clone());
        }
        self.engine.get(key)
    }

    /// Buffered write; takes the key's write lock (first-updater-wins).
    pub fn put(&mut self, key: &[u8], val: &[u8]) -> Result<()> {
        self.check_open()?;
        self.lock_key(key)?;
        self.writes.insert(key.to_vec(), Some(val.to_vec()));
        Ok(())
    }

    /// Buffered delete.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.check_open()?;
        self.lock_key(key)?;
        self.writes.insert(key.to_vec(), None);
        Ok(())
    }

    /// Scan merging committed data with this transaction's writes.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.check_open()?;
        let base = self.engine.scan(start, limit + self.writes.len())?;
        let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = base.into_iter().collect();
        for (k, v) in self.writes.range(start.to_vec()..) {
            match v {
                Some(v) => {
                    merged.insert(k.clone(), v.clone());
                }
                None => {
                    merged.remove(k);
                }
            }
        }
        Ok(merged.into_iter().take(limit).collect())
    }

    /// Commits: applies the write set under the tree latch, emits one atomic
    /// group ending in `TxnCommit`, and waits for Log Store durability.
    pub fn commit(mut self) -> Result<Lsn> {
        self.check_open()?;
        self.finished = true;
        let engine = Arc::clone(&self.engine);
        if self.writes.is_empty() {
            engine.release_locks(self.id, &self.locked);
            return Ok(engine.sal.durable_lsn());
        }
        let writes = std::mem::take(&mut self.writes);
        let pending = {
            let _exclusive = engine.tree_latch.write();
            // taurus-lint: allow(lock-across-fabric-call) -- committers must fetch pages under the exclusive latch (traversal atomicity); Page Store read handlers take no engine locks, so no cycle
            let fetch = engine.fetcher();
            let mut ctx = MutCtx::new(&engine.lsns, &fetch);
            for (k, op) in &writes {
                match op {
                    Some(v) => {
                        BTree::put(&mut ctx, k, v)?;
                    }
                    None => {
                        BTree::delete(&mut ctx, k)?;
                    }
                }
            }
            ctx.emit(PageId::CONTROL, RecordBody::TxnCommit { txn: self.id })?;
            let group = LogRecordGroup::new(engine.sal.db, ctx.records.clone());
            let pages = std::mem::take(&mut ctx.pages);
            drop(ctx);
            engine.install_pages(pages);
            // Buffer under the latch so buffer order equals LSN order; the
            // threshold flush (Log Store round trips) runs below, after
            // the latch drops — readers must not stall behind the network.
            engine.sal.buffer_group(group)
        };
        if let Some(p) = pending {
            p.run()?;
        }
        // Durability wait happens outside the latch: concurrent committers
        // batch into one Log Store write (group commit).
        let lsn = engine.sal.flush()?;
        engine.release_locks(self.id, &self.locked);
        engine.publish();
        Ok(lsn)
    }

    /// Abort: drop the private buffer. Nothing ever reached the log.
    pub fn rollback(mut self) {
        self.finished = true;
        let engine = Arc::clone(&self.engine);
        engine.release_locks(self.id, &self.locked);
        self.writes.clear();
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.engine.release_locks(self.id, &self.locked);
        }
    }
}
