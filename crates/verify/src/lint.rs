//! The `taurus-lint` engine: project-specific source checks that `rustc`
//! and `clippy` cannot express because they encode *this* codebase's
//! conventions:
//!
//! * **`unwrap-in-hot-path`** — `.unwrap()` / `.expect(...)` in non-test
//!   code of the storage hot-path crates (`logstore`, `pagestore`, `core`,
//!   `engine`). A panic in a Log Store or Page Store server is a simulated
//!   node crash; fallible paths must propagate `TaurusError`.
//! * **`direct-clock`** — `Instant::now()` / `SystemTime::now()` outside
//!   `taurus_common::clock`. All time must flow through the pluggable clock
//!   or failure drills and the determinism checker break.
//! * **`unseeded-rng`** — `rand::rng()` / `thread_rng()`: every RNG must be
//!   seeded from configuration so runs are reproducible.
//! * **`std-sync-lock`** — `std::sync::Mutex` / `std::sync::RwLock` where
//!   `parking_lot` is the workspace standard (no lock poisoning to handle).
//! * **`pushdown-no-panic`** — any panicking construct (`panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`, `assert*!`) in the Page
//!   Store's `ScanSlice` execution path (`crates/pagestore/src/pushdown*`).
//!   A `ScanSlice` call evaluates user-shaped predicates over arbitrary
//!   page bytes; a panic there takes the whole simulated Page Store node
//!   down for every tenant, so the module must be panic-free, not merely
//!   unwrap-free.
//!
//! The scanner strips comments and string/char literals first (so a pattern
//! inside a doc comment or log message never fires), skips `#[cfg(test)]`
//! modules and `#[test]` functions, and honors escape-hatch comments:
//!
//! ```text
//! let t = Instant::now(); // taurus-lint: allow(direct-clock) -- seeding the origin
//! ```
//!
//! An allow comment suppresses the named rules on its own line and on the
//! next line (so it can sit above the offending statement).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must not panic via `unwrap`/`expect`.
pub const HOT_PATH_CRATES: &[&str] = &["logstore", "pagestore", "core", "engine"];

/// All rule names, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    "unwrap-in-hot-path",
    "direct-clock",
    "unseeded-rng",
    "std-sync-lock",
    "pushdown-no-panic",
    "unjustified-allow",
    "lock-order-cycle",
    "lock-across-fabric-call",
    "condvar-foreign-mutex",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by `taurus-lint: allow(...)` comments.
    pub suppressed: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Count of findings per rule (rules with zero findings included).
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut map: BTreeMap<&'static str, usize> =
            RULE_NAMES.iter().map(|r| (*r, 0usize)).collect();
        for d in &self.diagnostics {
            *map.entry(d.rule).or_insert(0) += 1;
        }
        map
    }

    /// Machine-readable one-object JSON summary (hand-rolled: the lint must
    /// not pull in dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"violations\":{},", self.diagnostics.len()));
        out.push_str(&format!("\"suppressed\":{},", self.suppressed));
        out.push_str("\"by_rule\":{");
        let by_rule = self.by_rule();
        let mut first = true;
        for (rule, n) in &by_rule {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{rule}\":{n}"));
        }
        out.push_str("},\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.file.display().to_string()),
                d.line,
                d.rule,
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ====================================================================
// Source preprocessing
// ====================================================================

/// Replaces comments and string/char literal *contents* with spaces while
/// preserving line structure, so pattern matching never fires inside text.
/// Handles line comments, (nested) block comments, string literals with
/// escapes, raw strings `r"…"`/`r#"…"#`, byte strings, char literals, and
/// lifetimes (a lone `'a` is not a char literal).
pub fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 1usize;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (optionally with b prefix).
        let raw_start = if c == 'r' {
            Some(i)
        } else if c == 'b' && i + 1 < b.len() && b[i + 1] == 'r' {
            Some(i + 1)
        } else {
            None
        };
        if let Some(r_idx) = raw_start {
            // Only if previous char is not an identifier char (avoid `for`).
            let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
            let mut j = r_idx + 1;
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && j < b.len() && b[j] == '"' {
                // Emit the prefix as-is (r, b, #s, opening quote become spaces).
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                // Scan to closing quote + hashes.
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut h = 0usize;
                        while k < b.len() && b[k] == '#' && h < hashes {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            for _ in i..k {
                                out.push(' ');
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
        }
        // Normal string literal (and byte string b"...").
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(if b[i] == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < b.len() && b[i + 2] == '\'' && b[i + 1] != '\''
            };
            if is_char {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            // Lifetime: keep the tick (harmless) and move on.
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Marks lines belonging to test-only code: a `#[cfg(test)]` or `#[test]`
/// attribute plus the brace-balanced item that follows it. Operates on the
/// *stripped* source so braces in strings/comments don't confuse it.
pub fn test_code_lines(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut is_test = vec![false; lines.len()];
    let chars: Vec<char> = stripped.chars().collect();
    // Byte offset of the start of each line (in chars).
    let mut line_start = Vec::with_capacity(lines.len());
    {
        let mut pos = 0usize;
        for l in &lines {
            line_start.push(pos);
            pos += l.chars().count() + 1;
        }
    }
    let line_of = |pos: usize| -> usize {
        match line_start.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    };
    let mut search_from = 0usize;
    loop {
        // Find the next test attribute.
        let rest: String = chars[search_from..].iter().collect();
        let found = ["#[cfg(test)", "#[cfg(all(test", "#[test]"]
            .iter()
            .filter_map(|pat| rest.find(pat))
            .min();
        let Some(off) = found else { break };
        let attr_pos = search_from + off;
        // Walk to the first `{` after the attribute, then to its match.
        let mut j = attr_pos;
        let mut depth = 0i64;
        let mut opened = false;
        while j < chars.len() {
            match chars[j] {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened => {
                    // Item without a body (e.g. `#[cfg(test)] use ...;`).
                    break;
                }
                _ => {}
            }
            if opened && depth == 0 {
                break;
            }
            j += 1;
        }
        let end_pos = j.min(chars.len().saturating_sub(1));
        for line in line_of(attr_pos)..=line_of(end_pos) {
            if line < is_test.len() {
                is_test[line] = true;
            }
        }
        search_from = j.saturating_add(1);
        if search_from >= chars.len() {
            break;
        }
    }
    is_test
}

/// Extracts `taurus-lint: allow(rule, rule2)` escape hatches from the
/// *original* source. Returns, per 1-based line, the set of allowed rules —
/// an allow on line N covers lines N and N+1.
pub fn allow_directives(src: &str) -> BTreeMap<usize, Vec<String>> {
    let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("taurus-lint: allow(") else {
            continue;
        };
        let after = &line[pos + "taurus-lint: allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let lineno = idx + 1;
        allows.entry(lineno).or_default().extend(rules.clone());
        allows.entry(lineno + 1).or_default().extend(rules);
    }
    allows
}

// ====================================================================
// Rules
// ====================================================================

struct Finding {
    rule: &'static str,
    message: String,
}

/// Panicking constructs forbidden in the `ScanSlice` execution module.
const PANIC_PATTERNS: &[&str] = &[
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

/// Runs every rule against one stripped line. `hot_path` controls the
/// unwrap rule, `pushdown` the no-panic rule; the rest apply everywhere.
fn check_line(code: &str, hot_path: bool, pushdown: bool) -> Vec<Finding> {
    let mut found = Vec::new();
    if hot_path {
        if code.contains(".unwrap()") {
            found.push(Finding {
                rule: "unwrap-in-hot-path",
                message: "`.unwrap()` in storage hot-path code; propagate `TaurusError` instead"
                    .into(),
            });
        }
        if code.contains(".expect(") {
            found.push(Finding {
                rule: "unwrap-in-hot-path",
                message: "`.expect(...)` in storage hot-path code; propagate `TaurusError` instead"
                    .into(),
            });
        }
    }
    for pat in ["Instant::now()", "SystemTime::now()"] {
        if code.contains(pat) {
            found.push(Finding {
                rule: "direct-clock",
                message: format!(
                    "`{pat}` bypasses the pluggable clock; use `taurus_common::clock`"
                ),
            });
        }
    }
    for pat in ["rand::rng()", "thread_rng()"] {
        if code.contains(pat) {
            found.push(Finding {
                rule: "unseeded-rng",
                message: format!("`{pat}` is unseeded; derive an RNG from the configured seed"),
            });
        }
    }
    if code.contains("std::sync::Mutex") || code.contains("std::sync::RwLock") {
        found.push(Finding {
            rule: "std-sync-lock",
            message: "`std::sync` lock; the workspace standard is `parking_lot`".into(),
        });
    }
    if pushdown {
        for pat in PANIC_PATTERNS {
            // `debug_assert!` et al. contain `assert!(` as a substring but
            // compile out of release servers; match only a clean start.
            let hit = code.match_indices(pat).any(|(i, _)| {
                i == 0
                    || !code[..i]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
            });
            if hit {
                found.push(Finding {
                    rule: "pushdown-no-panic",
                    message: format!(
                        "`{pat}...)` in the ScanSlice execution path; a panic here crashes \
                         the Page Store node — return `TaurusError` instead"
                    ),
                });
            }
        }
    }
    found
}

/// Whether the unwrap rule applies to this file, judged from its path: the
/// crate name is the path component after `crates/`. Files whose crate
/// cannot be determined (e.g. lint fixtures) get the strict treatment.
fn unwrap_rule_applies(path: &Path) -> bool {
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    for w in comps.windows(2) {
        if w[0] == "crates" {
            return HOT_PATH_CRATES.contains(&w[1]);
        }
    }
    true
}

/// Whether the no-panic rule applies: the Page Store pushdown module (the
/// `ScanSlice` execution path), including any future submodules.
fn pushdown_rule_applies(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("crates/pagestore/src/pushdown")
}

// ====================================================================
// Driver
// ====================================================================

/// Lints one source text as if it lived at `path`. Appends to `report`.
pub fn lint_source(path: &Path, src: &str, report: &mut LintReport) {
    report.files_scanned += 1;
    let stripped = strip_comments_and_strings(src);
    let is_test = test_code_lines(&stripped);
    let allows = allow_directives(src);
    let hot_path = unwrap_rule_applies(path);
    let pushdown = pushdown_rule_applies(path);
    for (idx, code) in stripped.lines().enumerate() {
        if is_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        for f in check_line(code, hot_path, pushdown) {
            let allowed = allows
                .get(&lineno)
                .map(|rules| rules.iter().any(|r| r == f.rule))
                .unwrap_or(false);
            if allowed {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: f.rule,
                    message: f.message,
                });
            }
        }
    }
    // Every allow comment must justify itself with ` -- <reason>`. Only
    // comment context counts (a `//` before the marker on the raw line):
    // the lint's own source mentions the marker inside string literals.
    for (idx, raw) in src.lines().enumerate() {
        if is_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Some(pos) = raw.find("taurus-lint: allow(") else {
            continue;
        };
        if !raw[..pos].contains("//") {
            continue;
        }
        let after = &raw[pos + "taurus-lint: allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        // Doc text explains the marker with placeholder rule names
        // (`allow(...)`); only a directive naming a real rule is an allow.
        if !after[..close]
            .split(',')
            .any(|r| RULE_NAMES.contains(&r.trim()))
        {
            continue;
        }
        let rest = after[close + 1..].trim_start();
        let justified = rest
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if !justified {
            report.diagnostics.push(Diagnostic {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: "unjustified-allow",
                message: "`allow(...)` without a ` -- <reason>` justification; \
                          explain why the suppressed finding is safe"
                    .into(),
            });
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub fn collect_rs_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `crates/*/src/**/*.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        for file in collect_rs_files(&src_dir)? {
            let src = std::fs::read_to_string(&file)?;
            // Report paths relative to the root for stable, clickable output.
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            lint_source(&rel, &src, &mut report);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, src: &str) -> LintReport {
        let mut r = LintReport::default();
        lint_source(Path::new(path), src, &mut r);
        r
    }

    // ---- unwrap-in-hot-path ----

    #[test]
    fn unwrap_flagged_in_hot_path_crate() {
        let r = lint_str(
            "crates/logstore/src/x.rs",
            "fn f() { let v = g().unwrap(); }\n",
        );
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unwrap-in-hot-path");
        assert_eq!(r.diagnostics[0].line, 1);
    }

    #[test]
    fn expect_flagged_in_hot_path_crate() {
        let r = lint_str(
            "crates/pagestore/src/x.rs",
            "fn f() { g().expect(\"boom\"); }\n",
        );
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unwrap-in-hot-path");
    }

    #[test]
    fn unwrap_ignored_outside_hot_path_crates() {
        let r = lint_str("crates/bench/src/x.rs", "fn f() { g().unwrap(); }\n");
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unwrap_in_test_module_is_skipped() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { g().unwrap(); }\n}\n";
        let r = lint_str("crates/core/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unwrap_in_test_fn_outside_test_module_is_skipped() {
        let src = "#[test]\nfn t() {\n    g().unwrap();\n}\nfn prod() { g().unwrap(); }\n";
        let r = lint_str("crates/core/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 5);
    }

    // ---- direct-clock ----

    #[test]
    fn instant_now_flagged_everywhere() {
        let r = lint_str(
            "crates/workload/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "direct-clock");
    }

    #[test]
    fn system_time_now_flagged() {
        let r = lint_str("crates/common/src/x.rs", "fn f() { SystemTime::now(); }\n");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "direct-clock");
    }

    #[test]
    fn clock_pattern_inside_string_or_comment_is_ignored() {
        let src = "// Instant::now() is forbidden\nfn f() { log(\"Instant::now()\"); }\n/* SystemTime::now() */\n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    // ---- unseeded-rng ----

    #[test]
    fn unseeded_rng_flagged() {
        let r = lint_str(
            "crates/workload/src/x.rs",
            "fn f() { let mut r = rand::rng(); }\n",
        );
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unseeded-rng");
    }

    #[test]
    fn seeded_rng_is_clean() {
        let r = lint_str(
            "crates/workload/src/x.rs",
            "fn f(seed: u64) { let mut r = StdRng::seed_from_u64(seed); }\n",
        );
        assert!(r.is_clean());
    }

    // ---- std-sync-lock ----

    #[test]
    fn std_mutex_flagged() {
        let r = lint_str(
            "crates/core/src/x.rs",
            "use std::sync::Mutex;\nstatic M: std::sync::RwLock<u32> = std::sync::RwLock::new(0);\n",
        );
        assert_eq!(r.diagnostics.len(), 2);
        assert!(r.diagnostics.iter().all(|d| d.rule == "std-sync-lock"));
    }

    #[test]
    fn parking_lot_is_clean() {
        let r = lint_str("crates/core/src/x.rs", "use parking_lot::Mutex;\n");
        assert!(r.is_clean());
    }

    // ---- pushdown-no-panic ----

    #[test]
    fn panic_constructs_flagged_in_pushdown_module() {
        let src = "fn f() { panic!(\"no\"); }\nfn g(x: u8) { assert_eq!(x, 1); }\nfn h() { unreachable!() }\n";
        let r = lint_str("crates/pagestore/src/pushdown.rs", src);
        let rules: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "pushdown-no-panic")
            .collect();
        assert_eq!(rules.len(), 3, "{:?}", r.diagnostics);
    }

    #[test]
    fn panic_rule_is_scoped_to_the_pushdown_module() {
        let src = "fn f() { panic!(\"fine elsewhere\"); }\n";
        let r = lint_str("crates/pagestore/src/server.rs", src);
        assert!(
            r.diagnostics.iter().all(|d| d.rule != "pushdown-no-panic"),
            "{:?}",
            r.diagnostics
        );
        let sub = lint_str("crates/pagestore/src/pushdown/exec.rs", src);
        assert!(sub
            .diagnostics
            .iter()
            .any(|d| d.rule == "pushdown-no-panic"));
    }

    #[test]
    fn debug_assert_and_tests_are_exempt_in_pushdown_module() {
        let src = "fn f(x: u8) { debug_assert!(x < 8); debug_assert_eq!(x, x); }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let r = lint_str("crates/pagestore/src/pushdown.rs", src);
        assert!(
            r.diagnostics.iter().all(|d| d.rule != "pushdown-no-panic"),
            "{:?}",
            r.diagnostics
        );
    }

    // ---- allow escape hatch ----

    #[test]
    fn allow_comment_suppresses_same_line() {
        let src = "fn f() { Instant::now(); } // taurus-lint: allow(direct-clock) -- origin\n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src =
            "// taurus-lint: allow(unwrap-in-hot-path) -- fixture\nfn f() { g().unwrap(); }\n";
        let r = lint_str("crates/engine/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn allow_comment_only_suppresses_named_rule() {
        let src = "fn f() { Instant::now(); g().unwrap(); } // taurus-lint: allow(direct-clock) -- fixture\n";
        let r = lint_str("crates/core/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unwrap-in-hot-path");
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "fn f() { Instant::now(); } // taurus-lint: allow(direct-clock)\n";
        let r = lint_str("crates/common/src/x.rs", src);
        // The finding is still suppressed, but the bare allow is reported.
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unjustified-allow");
        assert_eq!(r.diagnostics[0].line, 1);
    }

    #[test]
    fn allow_marker_in_string_literal_is_not_an_allow_comment() {
        let src = "fn f() { let s = \"taurus-lint: allow(direct-clock)\"; }\n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn allow_with_empty_reason_is_reported() {
        let src = "fn f() { Instant::now(); } // taurus-lint: allow(direct-clock) -- \n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "unjustified-allow");
    }

    // ---- preprocessing corner cases ----

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_the_scanner() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nconst P: &str = r#\"Instant::now()\"#;\nfn g() { let c = 'x'; let nl = '\\n'; }\n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let src = "/* outer /* inner Instant::now() */ still comment */\nfn f() {}\n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn line_numbers_survive_stripping() {
        let src = "// comment\n\nfn f() {\n    thread_rng();\n}\n";
        let r = lint_str("crates/common/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].line, 4);
    }

    // ---- report plumbing ----

    #[test]
    fn json_summary_is_well_formed_and_counts_match() {
        let src = "fn f() { Instant::now(); }\n";
        let r = lint_str("crates/common/src/x.rs", src);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"violations\":1"));
        assert!(json.contains("\"direct-clock\":1"));
        assert!(json.contains("\"files_scanned\":1"));
    }

    #[test]
    fn by_rule_includes_zero_rules() {
        let r = lint_str("crates/common/src/x.rs", "fn f() {}\n");
        let by = r.by_rule();
        assert_eq!(by.len(), RULE_NAMES.len());
        assert!(by.values().all(|&n| n == 0));
    }
}
