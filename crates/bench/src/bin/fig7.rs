//! Regenerates **Fig. 7**: Taurus vs Amazon-Aurora-style quorum storage on
//! SysBench read-only, SysBench write-only, and TPC-C.
//!
//! The paper reports Taurus ahead in all five benchmarks — slightly (+16%)
//! on read-only, >50% on write-only, up to +160% on TPC-C. In this
//! reproduction both systems run on identical simulated hardware; the only
//! difference is the storage architecture (3/3 Log Stores + wait-for-one
//! Page Stores vs a 6/4 quorum that persists and consolidates the log on
//! all six replicas).

use taurus_baselines::{QuorumEngine, QuorumExecutor, TaurusExecutor};
use taurus_bench::{
    bench_clock, bench_config, header, launch_taurus_with, rel, txns_per_conn, ScaleRegime,
};
use taurus_common::config::NetworkProfile;
use taurus_fabric::Fabric;
use taurus_workload::{
    driver::load_initial, run_workload, SysbenchMode, SysbenchWorkload, TpccWorkload, Workload,
};

fn run_pair(workload: &dyn Workload, regime: ScaleRegime, conns: usize) -> (f64, f64) {
    let (rows, pool) = regime.geometry();
    let _ = rows;
    // Taurus.
    let (db, guard) = launch_taurus_with({
        let mut cfg = bench_config(pool);
        cfg.engine_buffer_pool_pages = pool;
        cfg
    })
    .expect("launch taurus");
    let taurus = TaurusExecutor::new(db);
    load_initial(&taurus, workload).expect("load taurus");
    let t_report = run_workload(&taurus, workload, conns, txns_per_conn(), 7);
    let sal = &taurus.db.master().sal;
    println!("  taurus SAL: {}", sal.stats.snapshot());
    for (node, queued, in_flight) in sal.pipeline_gauges() {
        if queued > 0 || in_flight > 0 {
            println!("  taurus SAL pipe {node}: queued={queued} in_flight={in_flight}");
        }
    }
    drop(guard);

    // Aurora-style 6/4 quorum on identical hardware profiles.
    let fabric = Fabric::new(bench_clock(), NetworkProfile::default(), 7);
    let cfg = bench_config(pool);
    let engine = QuorumEngine::aurora(fabric, cfg.clone(), cfg.storage).expect("launch aurora");
    let consolidation = engine.cluster().start_background_consolidation();
    let aurora = QuorumExecutor { engine };
    load_initial(&aurora, workload).expect("load aurora");
    let a_report = run_workload(&aurora, workload, conns, txns_per_conn(), 7);
    drop(consolidation);

    println!("  taurus : {}", t_report.row());
    println!("  aurora : {}", a_report.row());
    println!("  taurus vs aurora: {}", rel(t_report.tps, a_report.tps));
    (t_report.tps, a_report.tps)
}

fn main() {
    let conns = 8;
    println!("Fig. 7 — Taurus vs Aurora-style quorum storage (throughput)");
    println!("paper shape: Taurus wins everywhere; small margin read-only,");
    println!("large margins write-only and TPC-C\n");

    let mut wins = 0;
    let mut total = 0;

    for (label, mode, regime) in [
        (
            "SysBench read-only, cached dataset",
            SysbenchMode::ReadOnly,
            ScaleRegime::Cached,
        ),
        (
            "SysBench read-only, storage-bound dataset",
            SysbenchMode::ReadOnly,
            ScaleRegime::StorageBound,
        ),
        (
            "SysBench write-only, cached dataset",
            SysbenchMode::WriteOnly,
            ScaleRegime::Cached,
        ),
        (
            "SysBench write-only, storage-bound dataset",
            SysbenchMode::WriteOnly,
            ScaleRegime::StorageBound,
        ),
    ] {
        header(label);
        let (rows, _) = regime.geometry();
        let w = SysbenchWorkload::new(mode, rows, 200);
        let (t, a) = run_pair(&w, regime, conns);
        total += 1;
        if t > a {
            wins += 1;
        }
    }

    header("TPC-C-like");
    let w = TpccWorkload::new(2);
    let (t, a) = run_pair(&w, ScaleRegime::Cached, conns);
    total += 1;
    if t > a {
        wins += 1;
    }

    println!();
    println!("Summary: Taurus ahead in {wins}/{total} benchmarks (paper: 5/5).");
}
