//! `ReadPages`: batched versioned page reads inside a Page Store.
//!
//! The SAL's miss path historically paid one `ReadPage` RPC per page; this
//! module adds the batched sibling: one call materializes many pages of a
//! slice at a single snapshot LSN. Execution never bypasses versioning —
//! every page goes through the same Log Directory + consolidation path
//! `ReadPage` uses, so a batch is byte-identical to N sequential single-page
//! reads at the same `as_of`. Under the layered consolidation policy
//! (DESIGN.md §13) materialization transparently sources records from the
//! open L0's staged memory, a sealed L0's run index, or a compacted L0 blob
//! — the visibility gates and results below are unchanged.
//!
//! Visibility gates mirror `ScanSlice`: a rebuilding or behind replica
//! refuses the *whole* call (so the SAL routes to the next replica), while
//! per-page conditions — a recycled version, a failed materialization — are
//! reported per page without failing the rest of the batch; the SAL retries
//! those stragglers through the single-page repair path.
//!
//! Like `ScanSlice`, a call carries page and byte budgets checked at page
//! granularity: when a batch crosses either budget the server stops and
//! returns a continuation ([`ReadPagesResponse::resume_from`]), so one read
//! RPC stays bounded and cannot starve concurrent `WriteLogs` traffic.
//!
//! Same discipline as `crate::pushdown`: this is in-store execution, so no
//! panicking constructs — every failure becomes a `TaurusError` or a
//! per-page outcome.

use taurus_common::{Lsn, PageBuf, PageId, Result, SliceKey, TaurusError};

use crate::server::PageStoreServer;

/// One `ReadPages` call: materialize `pages` of `key` as of a snapshot LSN,
/// within per-call budgets.
#[derive(Clone, Debug)]
pub struct ReadPagesRequest {
    pub key: SliceKey,
    /// Snapshot LSN every page is materialized as of.
    pub as_of: Lsn,
    /// Page ids to read; outcomes come back in this order.
    pub pages: Vec<PageId>,
    /// Stop after this many pages (at least one page is always attempted).
    pub max_pages: usize,
    /// Stop after the page that brings returned payload to this size.
    pub max_bytes: usize,
}

/// Per-page outcome inside a batch.
#[derive(Clone, Debug)]
pub enum PageReadOutcome {
    /// Materialized image and the LSN of the newest record applied to it.
    Ok(PageBuf, Lsn),
    /// Versions at or below the snapshot were recycled for this page.
    Recycled { requested: Lsn },
    /// Materialization failed for this page alone; the message is the
    /// underlying error's rendering. The batch keeps going.
    Failed(String),
}

/// Result of one `ReadPages` call: per-page outcomes plus an optional
/// continuation when a budget stopped the batch early.
#[derive(Clone, Debug, Default)]
pub struct ReadPagesResponse {
    /// One outcome per *attempted* page, in request order.
    pub pages: Vec<(PageId, PageReadOutcome)>,
    /// Bytes of page payload in `pages`.
    pub bytes_returned: u64,
    /// Set when a budget stopped the batch: the index into the request's
    /// `pages` of the first page **not** attempted. Re-issue the call with
    /// the remaining ids to continue.
    pub resume_from: Option<usize>,
}

impl PageStoreServer {
    /// `ReadPages`: the batched sibling of `ReadPage`. Applies the same
    /// slice-level visibility gates as `ScanSlice`, then materializes each
    /// requested page at the snapshot LSN, capturing per-page failures as
    /// outcomes instead of failing the batch.
    pub fn read_pages(&self, call: &ReadPagesRequest) -> Result<ReadPagesResponse> {
        let replica = self.replica(call.key)?;
        {
            let r = replica.lock();
            if r.rebuilding {
                return Err(TaurusError::PageStoreBehind {
                    slice: call.key,
                    requested: call.as_of,
                    persistent: Lsn::ZERO,
                });
            }
            // Elastic cut-over fence: snapshots above it belong to the
            // successor placement (DESIGN.md §14).
            if let Some(fence) = r.fence_lsn {
                if call.as_of > fence {
                    return Err(TaurusError::SliceFenced {
                        slice: call.key,
                        fence,
                        requested: call.as_of,
                    });
                }
            }
            let persistent = r.persistent_lsn();
            if persistent < call.as_of {
                return Err(TaurusError::PageStoreBehind {
                    slice: call.key,
                    requested: call.as_of,
                    persistent,
                });
            }
            // Same head-read exception as `read_page`: the slice head is
            // always materializable. Unlike a behind replica, recycling is a
            // versioning condition every replica agrees on — routing to the
            // next replica cannot help — so it is reported per page and the
            // batch survives.
            if call.as_of < r.recycle_lsn() && call.as_of < persistent {
                let attempted = call.pages.len().min(call.max_pages.max(1));
                let pages = call.pages[..attempted]
                    .iter()
                    .map(|&p| {
                        (
                            p,
                            PageReadOutcome::Recycled {
                                requested: call.as_of,
                            },
                        )
                    })
                    .collect::<Vec<_>>();
                let resume_from = (attempted < call.pages.len()).then_some(attempted);
                return Ok(ReadPagesResponse {
                    pages,
                    bytes_returned: 0,
                    resume_from,
                });
            }
        }
        let mut resp = ReadPagesResponse::default();
        for (i, &page) in call.pages.iter().enumerate() {
            // Budgets are checked before each page but after the first, so
            // every call makes progress and a continuation loop terminates.
            if i > 0
                && (resp.pages.len() >= call.max_pages.max(1)
                    || resp.bytes_returned >= call.max_bytes as u64)
            {
                resp.resume_from = Some(i);
                break;
            }
            let outcome = match self.materialize(call.key, page, call.as_of) {
                Ok((buf, lsn)) => {
                    resp.bytes_returned += buf.as_bytes().len() as u64;
                    PageReadOutcome::Ok(buf, lsn)
                }
                Err(TaurusError::VersionRecycled { requested, .. }) => {
                    PageReadOutcome::Recycled { requested }
                }
                Err(e) => PageReadOutcome::Failed(e.to_string()),
            };
            resp.pages.push((page, outcome));
        }
        let served = resp
            .pages
            .iter()
            .filter(|(_, o)| matches!(o, PageReadOutcome::Ok(..)))
            .count() as u64;
        if served > 0 {
            self.note_read_heat(call.key, served, resp.bytes_returned);
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use std::sync::Arc;

    use bytes::Bytes;
    use taurus_common::clock::ManualClock;
    use taurus_common::config::StorageProfile;
    use taurus_common::record::RecordBody;
    use taurus_common::{DbId, LogRecord, PageType, SliceId};
    use taurus_fabric::StorageDevice;

    use crate::fragment::SliceFragment;
    use crate::pool::EvictionPolicy;
    use crate::server::ConsolidationPolicy;

    fn server() -> Arc<PageStoreServer> {
        let clock = ManualClock::shared();
        PageStoreServer::new(
            StorageDevice::in_memory(clock, StorageProfile::instant()),
            1 << 20,
            64,
            EvictionPolicy::Lfu,
            ConsolidationPolicy::LogCacheCentric,
        )
    }

    fn key() -> SliceKey {
        SliceKey::new(DbId(1), SliceId(0))
    }

    fn format_rec(lsn: u64, page: u64) -> LogRecord {
        LogRecord::new(
            Lsn(lsn),
            PageId(page),
            RecordBody::Format {
                ty: PageType::Leaf,
                level: 0,
            },
        )
    }

    fn insert_rec(lsn: u64, page: u64, idx: u16, k: &str, v: &str) -> LogRecord {
        LogRecord::new(
            Lsn(lsn),
            PageId(page),
            RecordBody::Insert {
                idx,
                key: Bytes::copy_from_slice(k.as_bytes()),
                val: Bytes::copy_from_slice(v.as_bytes()),
            },
        )
    }

    /// Two leaf pages, three rows each, written as one fragment chain.
    fn seeded() -> Arc<PageStoreServer> {
        let s = server();
        s.create_slice(key());
        s.write_logs(&SliceFragment::new(
            key(),
            Lsn(0),
            vec![
                format_rec(1, 5),
                insert_rec(2, 5, 0, "a", "1"),
                insert_rec(3, 5, 1, "b", "2"),
                insert_rec(4, 5, 2, "c", "3"),
                format_rec(5, 6),
                insert_rec(6, 6, 0, "d", "4"),
                insert_rec(7, 6, 1, "e", "5"),
                insert_rec(8, 6, 2, "f", "6"),
            ],
        ))
        .unwrap();
        s
    }

    fn call(as_of: u64, pages: Vec<PageId>) -> ReadPagesRequest {
        ReadPagesRequest {
            key: key(),
            as_of: Lsn(as_of),
            pages,
            max_pages: usize::MAX,
            max_bytes: usize::MAX,
        }
    }

    #[test]
    fn batch_matches_sequential_single_page_reads() {
        let s = seeded();
        let ids = vec![PageId(5), PageId(6)];
        let resp = s.read_pages(&call(8, ids.clone())).unwrap();
        assert_eq!(resp.pages.len(), 2);
        assert!(resp.resume_from.is_none());
        for (got, want_id) in resp.pages.iter().zip(&ids) {
            let (single, lsn) = s.read_page(key(), *want_id, Lsn(8)).unwrap();
            assert_eq!(got.0, *want_id);
            match &got.1 {
                PageReadOutcome::Ok(buf, l) => {
                    assert_eq!(buf.as_bytes(), single.as_bytes());
                    assert_eq!(*l, lsn);
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn batch_respects_snapshot_lsn() {
        let s = seeded();
        // As of LSN 4 page 6 is still unformatted: a Free page at LSN 0.
        let resp = s.read_pages(&call(4, vec![PageId(6)])).unwrap();
        match &resp.pages[0].1 {
            PageReadOutcome::Ok(buf, lsn) => {
                assert_eq!(buf.page_type(), PageType::Free);
                assert_eq!(*lsn, Lsn::ZERO);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn page_budget_stops_batch_and_continuation_resumes() {
        let s = seeded();
        let mut c = call(8, vec![PageId(5), PageId(6)]);
        c.max_pages = 1;
        let first = s.read_pages(&c).unwrap();
        assert_eq!(first.pages.len(), 1);
        assert_eq!(first.resume_from, Some(1));
        let rest = call(8, c.pages[1..].to_vec());
        let second = s.read_pages(&rest).unwrap();
        assert_eq!(second.pages.len(), 1);
        assert!(second.resume_from.is_none());
        assert_eq!(second.pages[0].0, PageId(6));
    }

    #[test]
    fn byte_budget_still_attempts_first_page() {
        let s = seeded();
        let mut c = call(8, vec![PageId(5), PageId(6)]);
        c.max_bytes = 1; // crossed by the very first page
        let resp = s.read_pages(&c).unwrap();
        assert_eq!(resp.pages.len(), 1);
        assert_eq!(resp.resume_from, Some(1));
    }

    #[test]
    fn behind_replica_refuses_whole_batch() {
        let s = seeded();
        let err = s.read_pages(&call(99, vec![PageId(5)])).unwrap_err();
        assert!(matches!(err, TaurusError::PageStoreBehind { .. }));
    }

    #[test]
    fn recycled_snapshot_reports_per_page_not_whole_batch() {
        let s = seeded();
        s.set_recycle_lsn(key(), Lsn(6)).unwrap();
        let resp = s.read_pages(&call(4, vec![PageId(5), PageId(6)])).unwrap();
        assert_eq!(resp.pages.len(), 2);
        assert!(resp.pages.iter().all(
            |(_, o)| matches!(o, PageReadOutcome::Recycled { requested } if *requested == Lsn(4))
        ));
        // The head remains servable (purge keeps base versions at the head).
        let head = s.read_pages(&call(8, vec![PageId(5)])).unwrap();
        assert!(matches!(head.pages[0].1, PageReadOutcome::Ok(..)));
    }

    #[test]
    fn unknown_slice_is_a_whole_call_error() {
        let s = server();
        assert!(s.read_pages(&call(1, vec![PageId(5)])).is_err());
    }
}
