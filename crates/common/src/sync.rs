//! Small synchronization helpers shared across the workspace.

use parking_lot::{Condvar, Mutex};

/// A ticket turnstile: threads holding consecutive tickets pass through one
/// at a time, in ticket order, regardless of the order they arrive in.
///
/// The SAL flush pipeline uses two of these to keep its *ordered* sections
/// ordered while the expensive middle (the replicated 3/3 log append) runs
/// concurrently: tickets are assigned under the SAL lock in LSN order, each
/// flush reserves its log-tail slot inside `wait_for(ticket)`/`advance()`,
/// fans out to the Log Stores unordered, then commits bookkeeping inside a
/// second turnstile.
///
/// Every ticket holder **must** call [`Sequencer::advance`] exactly once —
/// including on error paths — or every later ticket blocks forever.
#[derive(Debug, Default)]
pub struct Sequencer {
    current: Mutex<u64>,
    cv: Condvar,
}

impl Sequencer {
    /// A turnstile whose first admitted ticket is 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until `ticket` is the current turn. Tickets must be obtained
    /// from a dense counter starting at 0; waiting on a ticket that was
    /// already admitted returns immediately (and indicates a caller bug if
    /// the holder also advances again).
    pub fn wait_for(&self, ticket: u64) {
        let mut current = self.current.lock();
        while *current < ticket {
            self.cv.wait(&mut current);
        }
    }

    /// Ends the current turn, admitting the next ticket.
    pub fn advance(&self) {
        let mut current = self.current.lock();
        *current += 1;
        self.cv.notify_all();
    }

    /// Blocks until `ticket` is the current turn and returns a guard that
    /// [`advance`](Sequencer::advance)s exactly once when dropped. Prefer
    /// this over a manual `wait_for`/`advance` pair: early returns, `?`,
    /// and panics all still admit the next ticket, so one failing holder
    /// cannot wedge the turnstile.
    pub fn ticket_guard(&self, ticket: u64) -> TicketGuard<'_> {
        self.wait_for(ticket);
        TicketGuard { seq: self }
    }
}

/// An admitted turn in a [`Sequencer`]; the turn ends (and the next ticket
/// is admitted) when this guard drops.
#[derive(Debug)]
pub struct TicketGuard<'a> {
    seq: &'a Sequencer,
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        self.seq.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn tickets_pass_in_order_regardless_of_arrival() {
        let seq = Arc::new(Sequencer::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Spawn in reverse ticket order so later tickets arrive first.
        for ticket in (0..8u64).rev() {
            let seq = Arc::clone(&seq);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                seq.wait_for(ticket);
                order.lock().push(ticket);
                seq.advance();
            }));
        }
        for h in handles {
            h.join().map_err(|_| "worker panicked").unwrap();
        }
        assert_eq!(*order.lock(), (0..8u64).collect::<Vec<_>>());
    }

    #[test]
    fn failing_ticket_holder_cannot_wedge_later_tickets() {
        let seq = Arc::new(Sequencer::new());
        // Ticket 0 "fails": its holder unwinds out of the ordered section.
        // The guard must still advance, or ticket 1 blocks forever.
        let s0 = Arc::clone(&seq);
        let failer = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _turn = s0.ticket_guard(0);
                panic!("flush failed mid-turn");
            }));
            assert!(result.is_err());
        });
        failer.join().map_err(|_| "failer hung").unwrap();
        // An error-return path (guard dropped by `?`-style early exit).
        let early_exit = |seq: &Sequencer| -> Result<(), ()> {
            let _turn = seq.ticket_guard(1);
            Err(())
        };
        assert!(early_exit(&seq).is_err());
        // Ticket 2 must now be admitted promptly.
        let s2 = Arc::clone(&seq);
        let waiter = std::thread::spawn(move || {
            let _turn = s2.ticket_guard(2);
        });
        waiter.join().map_err(|_| "ticket 2 wedged").unwrap();
    }

    #[test]
    fn turnstile_admits_one_holder_at_a_time() {
        let seq = Arc::new(Sequencer::new());
        let inside = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for ticket in 0..6u64 {
            let seq = Arc::clone(&seq);
            let inside = Arc::clone(&inside);
            handles.push(std::thread::spawn(move || {
                seq.wait_for(ticket);
                assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                inside.fetch_sub(1, Ordering::SeqCst);
                seq.advance();
            }));
        }
        for h in handles {
            h.join().map_err(|_| "worker panicked").unwrap();
        }
    }
}
