//! The Storage Abstraction Layer.
//!
//! Write-pipeline topology (see DESIGN.md §"Write-pipeline robustness"):
//! the SAL runs one bounded queue **per Page Store replica node**, drained
//! by at most one detached job on the fabric's bounded dispatcher pool
//! (DESIGN.md §15) — no dedicated OS thread per replica. A slice flush
//! enqueues one shared `Arc<SliceFragment>` on each replica's queue;
//! drainers retry failed `WriteLogs` with exponential backoff, and after
//! the retry budget is spent they *park* the slice for
//! repair-from-Log-Stores and demote the replica to *suspect*
//! (deprioritized for reads) until it proves itself alive again. With RPC
//! coalescing, a queued run of fragments to one node rides one grouped
//! envelope instead of one round trip each.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::Rng;

use taurus_common::clock::ClockRef;
use taurus_common::lsn::{LsnVector, LsnWatermark};
use taurus_common::metrics::{Counter, Gauge, LogStoreStats};
use taurus_common::scan::{evaluate_leaf_page, AggState, ScanAccumulator, ScanRequest};
use taurus_common::sync::Sequencer;
use taurus_common::{
    DbId, LogRecord, LogRecordGroup, Lsn, NodeId, PageBuf, PageId, Result, SliceKey, TaurusConfig,
    TaurusError, PAGE_SIZE,
};
use taurus_logstore::{encode_batch, LogStoreCluster, LogStream};
use taurus_pagestore::{
    IngestFilter, PageReadOutcome, PageStoreCluster, ReadPagesRequest, ScanSliceRequest,
    SliceFragment, SliceHeatSnapshot,
};

/// Per-slice state the SAL maintains (paper §3.5, §4).
#[derive(Debug)]
pub(crate) struct SliceState {
    /// Current Page Store replica placement (refreshed from the cluster
    /// manager on changes).
    pub replicas: Vec<NodeId>,
    /// Placement epoch this SAL has for the slice; carried on epoch-checked
    /// RPCs and refreshed on `PlacementEpochMismatch` (DESIGN.md §14).
    pub epoch: u64,
    /// Elastic cut-over fence: `Some(F)` once the slice is retired — it owns
    /// only LSNs `<= F` and stops gating `min_acked_lsn` once sealed.
    pub fence: Option<Lsn>,
    /// Records accumulated for the next fragment.
    buffer: Vec<LogRecord>,
    buffer_bytes: usize,
    /// Chain link for the next fragment: last LSN ever handed to a flush.
    pub flush_lsn: Lsn,
    /// Last fragment end acknowledged by ≥1 replica ("the slice write is
    /// safe; the buffer can be released").
    pub acked_lsn: Lsn,
    /// Last persistent LSN reported by each replica (piggybacked on
    /// WriteLogs/ReadPage responses or polled — paper §4.3).
    pub replica_persistent: HashMap<NodeId, Lsn>,
    /// EWMA read latency per replica (µs) for latency-aware routing (§4.2).
    pub read_latency_us: HashMap<NodeId, f64>,
    /// Fabric time of the last persistent-LSN progress on the slowest
    /// replica (stall detection, §5.2).
    pub last_progress_us: u64,
    /// When the current buffer got its first record (flush timeout).
    buffer_opened_us: u64,
}

impl SliceState {
    pub(crate) fn new(replicas: Vec<NodeId>) -> Self {
        SliceState {
            replicas,
            epoch: 0,
            fence: None,
            buffer: Vec::new(),
            buffer_bytes: 0,
            flush_lsn: Lsn::ZERO,
            acked_lsn: Lsn::ZERO,
            replica_persistent: HashMap::new(),
            read_latency_us: HashMap::new(),
            last_progress_us: 0,
            buffer_opened_us: 0,
        }
    }

    /// Minimum persistent LSN across this slice's replicas (ZERO until all
    /// have reported).
    pub fn min_replica_persistent(&self) -> Lsn {
        self.replicas
            .iter()
            .map(|n| self.replica_persistent.get(n).copied().unwrap_or(Lsn::ZERO))
            .min()
            .unwrap_or(Lsn::ZERO)
    }
}

/// One flushed database log buffer awaiting CV-LSN advancement: the buffer's
/// end LSN becomes cluster-visible once every overlapping slice buffer has
/// reached at least one Page Store replica (paper §3.5).
#[derive(Debug)]
struct PendingBuffer {
    end_lsn: Lsn,
    /// Slice → last LSN this buffer contributed to it; satisfied when the
    /// slice's acked LSN reaches it.
    needs: HashMap<SliceKey, Lsn>,
}

/// One log-buffer's worth of groups on its way through the flush pipeline:
/// prepared (ticketed, stream-assigned) under the state lock, batch-encoded
/// and appended to its log stream with no lock held, then committed by the
/// contiguous-prefix walk over [`SalState::flush_spans`].
struct PreparedFlush {
    /// Log stream this flush was assigned to (global ticket % streams).
    stream: usize,
    /// Dense per-stream ticket (`ticket / streams`): orders this stream's
    /// reservation turnstile.
    stream_ticket: u64,
    /// End of the span prepared immediately before this one (any stream):
    /// the chain link recovery uses to detect cross-stream log holes.
    prev_end: Lsn,
    first: Lsn,
    end: Lsn,
    groups: Vec<LogRecordGroup>,
}

/// Completion state of one flush span in the global prepare-order window.
#[derive(Debug)]
enum SpanState {
    /// Append still running on its stream.
    InFlight,
    /// Durable on its stream; groups parked here until the span reaches the
    /// front of the window and the prefix walk distributes them.
    Durable(Vec<LogRecordGroup>),
    /// Append failed outright; latches `failed_at` when it reaches the front.
    Failed,
}

/// One prepared flush tracked in global prepare order. The durable LSN only
/// advances over the contiguous prefix of durable spans, so a span that
/// finishes on stream A before an earlier span on stream B does not become
/// visible early — the LSN-vector commit rule (parallel-logging paper).
#[derive(Debug)]
struct FlushSpan {
    first: Lsn,
    end: Lsn,
    stream: usize,
    state: SpanState,
}

/// A threshold-triggered log flush handed back by [`Sal::buffer_group`].
/// The holder runs it once any latches are released; dropping it unrun
/// performs the flush anyway (the flush owns a pipeline ticket — skipping
/// it would wedge every later flush behind the missing turn).
#[must_use = "run() the flush after releasing latches; dropping runs it in place"]
pub struct PendingFlush<'a> {
    sal: &'a Sal,
    prepared: Option<PreparedFlush>,
}

impl PendingFlush<'_> {
    /// Performs the replicated append for the buffered records.
    pub fn run(mut self) -> Result<()> {
        match self.prepared.take() {
            Some(p) => self.sal.run_flush(p),
            None => Ok(()),
        }
    }
}

impl Drop for PendingFlush<'_> {
    fn drop(&mut self) {
        if let Some(p) = self.prepared.take() {
            // Errors latch into `SalState::failed_at` inside `run_flush` and
            // later `Sal::flush` callers observe them there — but a drop
            // site has no caller to hand the error to, so it must not be
            // *silently* swallowed: count it and flag the violation.
            let end = p.end;
            let res = self.sal.run_flush(p);
            if let Err(e) = res {
                self.sal.stats.dropped_flush_errors.inc();
                taurus_common::invariant!(
                    "pending-flush-dropped-error",
                    false,
                    "flush ending at {end} failed in PendingFlush::drop: {e}"
                );
            }
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct SalState {
    log_buffer: Vec<LogRecordGroup>,
    log_buffer_bytes: usize,
    /// Ticket of the next prepared flush (log-write pipeline order).
    next_flush_ticket: u64,
    /// End LSN of the newest *prepared* flush — it may still be in flight.
    /// `flush()` waits for the durable LSN to catch up to this.
    last_prepared_end: Lsn,
    /// End LSN of the first log flush that failed outright (the cluster
    /// could not host a new PLog). Everything at or below the durable LSN
    /// stays valid; later flushes sit behind the gap and the durable LSN
    /// stops advancing.
    failed_at: Lsn,
    /// Flush spans in global prepare order, the window over which the
    /// durable LSN advances: popped as a contiguous prefix of
    /// `Durable` spans by [`Sal::advance_durable_prefix_locked`].
    flush_spans: VecDeque<FlushSpan>,
    /// Prepared flushes not yet durable or failed. When every stream has
    /// one in flight, `flush()` waits and lets the group grow (adaptive
    /// group commit) instead of queueing a tiny span behind the window.
    flushes_in_flight: usize,
    /// Fabric time the current log buffer got its first group; `tick()`
    /// flushes an idle buffer once it is older than
    /// `log_group_commit_idle_us`.
    log_buffer_opened_us: u64,
    pub slices: HashMap<SliceKey, SliceState>,
    pending: VecDeque<PendingBuffer>,
    /// Named snapshots: LSNs pinned against version recycling. Because Page
    /// Stores are append-only, creating a snapshot is constant-time — it is
    /// just an LSN (the paper's abstract: "append-only storage, delivering
    /// ... constant-time snapshots").
    snapshots: HashMap<String, Lsn>,
}

/// Counters exposed for benches and tests.
#[derive(Debug, Default)]
pub struct SalStats {
    pub log_flushes: Counter,
    pub slice_flushes: Counter,
    pub page_reads: Counter,
    pub read_retries: Counter,
    pub resends: Counter,
    pub gossip_triggers: Counter,
    /// `WriteLogs` re-attempts after a failed attempt (per attempt, not per
    /// fragment).
    pub write_retries: Counter,
    /// Failed attempts that also blew the per-attempt latency budget.
    pub write_timeouts: Counter,
    /// Fragments abandoned by a sender worker after the retry budget —
    /// their slice is parked for repair from the Log Stores.
    pub fragments_parked: Counter,
    /// Fragments shed because a replica's send queue was full.
    pub queue_full_drops: Counter,
    /// Healthy → suspect transitions.
    pub suspect_demotions: Counter,
    /// Suspect → healthy transitions.
    pub suspect_resurrections: Counter,
    /// Log flushes that failed inside `PendingFlush::drop`, where no caller
    /// could observe the error directly (it still latches `failed_at`).
    pub dropped_flush_errors: Counter,
    /// `flush()` calls that waited for a stream slot so the commit group
    /// could grow (adaptive group commit under load).
    pub group_commit_waits: Counter,
    /// Log Directory pointers the recycle broadcasts purged across Page
    /// Stores (the handshake reports back what it freed).
    pub recycle_ptrs_purged: Counter,
    /// Fragment + layer bytes the recycle broadcasts logically reclaimed.
    pub recycle_bytes_reclaimed: Counter,
    /// Slice-level heat aggregates (DESIGN.md §14): log records shipped to
    /// slices and page reads served, in ops and bytes. Per-slice breakdowns
    /// live on the Page Stores (`Sal::slice_heat`).
    pub slice_write_ops: Counter,
    pub slice_write_bytes: Counter,
    pub slice_read_ops: Counter,
    pub slice_read_bytes: Counter,
    /// Grouped (coalesced) fabric envelopes issued by the miss, scan, and
    /// flush paths: each merges every per-slice request bound for one Page
    /// Store node into a single round trip.
    pub grouped_envelopes: Counter,
    /// Per-slice requests that rode a grouped envelope instead of paying
    /// their own fabric round trip.
    pub grouped_slice_batches: Counter,
    /// Slices that left the grouped path (envelope failure or a budget
    /// continuation) and fell back to their own per-slice calls.
    pub grouped_fallback_slices: Counter,
    /// Coalescing histogram: per-slice requests per grouped envelope,
    /// buckets 1, 2, 3–4, 5–8, 9+.
    pub coalesced_per_rpc: [Counter; 5],
}

impl SalStats {
    /// Records one grouped envelope carrying `n` per-slice requests.
    fn note_coalesced(&self, n: usize) {
        let bucket = match n {
            0..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            _ => 4,
        };
        self.coalesced_per_rpc[bucket].inc();
        self.grouped_envelopes.inc();
        self.grouped_slice_batches.add(n as u64);
    }

    /// Point-in-time copy of every counter (benches print this).
    pub fn snapshot(&self) -> SalStatsSnapshot {
        SalStatsSnapshot {
            log_flushes: self.log_flushes.get(),
            slice_flushes: self.slice_flushes.get(),
            page_reads: self.page_reads.get(),
            read_retries: self.read_retries.get(),
            resends: self.resends.get(),
            gossip_triggers: self.gossip_triggers.get(),
            write_retries: self.write_retries.get(),
            write_timeouts: self.write_timeouts.get(),
            fragments_parked: self.fragments_parked.get(),
            queue_full_drops: self.queue_full_drops.get(),
            suspect_demotions: self.suspect_demotions.get(),
            suspect_resurrections: self.suspect_resurrections.get(),
            dropped_flush_errors: self.dropped_flush_errors.get(),
            group_commit_waits: self.group_commit_waits.get(),
            recycle_ptrs_purged: self.recycle_ptrs_purged.get(),
            recycle_bytes_reclaimed: self.recycle_bytes_reclaimed.get(),
            slice_write_ops: self.slice_write_ops.get(),
            slice_write_bytes: self.slice_write_bytes.get(),
            slice_read_ops: self.slice_read_ops.get(),
            slice_read_bytes: self.slice_read_bytes.get(),
            grouped_envelopes: self.grouped_envelopes.get(),
            grouped_slice_batches: self.grouped_slice_batches.get(),
            grouped_fallback_slices: self.grouped_fallback_slices.get(),
            coalesced_per_rpc: [
                self.coalesced_per_rpc[0].get(),
                self.coalesced_per_rpc[1].get(),
                self.coalesced_per_rpc[2].get(),
                self.coalesced_per_rpc[3].get(),
                self.coalesced_per_rpc[4].get(),
            ],
        }
    }
}

/// Plain-value snapshot of [`SalStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SalStatsSnapshot {
    pub log_flushes: u64,
    pub slice_flushes: u64,
    pub page_reads: u64,
    pub read_retries: u64,
    pub resends: u64,
    pub gossip_triggers: u64,
    pub write_retries: u64,
    pub write_timeouts: u64,
    pub fragments_parked: u64,
    pub queue_full_drops: u64,
    pub suspect_demotions: u64,
    pub suspect_resurrections: u64,
    pub dropped_flush_errors: u64,
    pub group_commit_waits: u64,
    pub recycle_ptrs_purged: u64,
    pub recycle_bytes_reclaimed: u64,
    pub slice_write_ops: u64,
    pub slice_write_bytes: u64,
    pub slice_read_ops: u64,
    pub slice_read_bytes: u64,
    pub grouped_envelopes: u64,
    pub grouped_slice_batches: u64,
    pub grouped_fallback_slices: u64,
    pub coalesced_per_rpc: [u64; 5],
}

impl std::fmt::Display for SalStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "log_flushes={} slice_flushes={} page_reads={} read_retries={} \
             resends={} gossip_triggers={} write_retries={} write_timeouts={} \
             fragments_parked={} queue_full_drops={} suspect_demotions={} \
             suspect_resurrections={} dropped_flush_errors={} \
             group_commit_waits={} recycle_ptrs_purged={} \
             recycle_bytes_reclaimed={} slice_write_ops={} \
             slice_write_bytes={} slice_read_ops={} slice_read_bytes={} \
             grouped_envelopes={} grouped_slice_batches={} \
             grouped_fallback_slices={} \
             coalesced_per_rpc[1|2|3-4|5-8|9+]={:?}",
            self.log_flushes,
            self.slice_flushes,
            self.page_reads,
            self.read_retries,
            self.resends,
            self.gossip_triggers,
            self.write_retries,
            self.write_timeouts,
            self.fragments_parked,
            self.queue_full_drops,
            self.suspect_demotions,
            self.suspect_resurrections,
            self.dropped_flush_errors,
            self.group_commit_waits,
            self.recycle_ptrs_purged,
            self.recycle_bytes_reclaimed,
            self.slice_write_ops,
            self.slice_write_bytes,
            self.slice_read_ops,
            self.slice_read_bytes,
            self.grouped_envelopes,
            self.grouped_slice_batches,
            self.grouped_fallback_slices,
            self.coalesced_per_rpc,
        )
    }
}

/// Counters for the near-data scan pushdown planner (NDP paper; printed by
/// the `ndp` bench).
#[derive(Debug, Default)]
pub struct NdpStats {
    /// Planner invocations (one per table scan).
    pub pushdown_scans: Counter,
    /// `ScanSlice` RPCs issued, continuations included.
    pub slice_calls: Counter,
    /// Failed `ScanSlice` attempts (replica skipped, next one tried).
    pub slice_retries: Counter,
    /// Slices that fell back to `ReadPage` + local evaluation.
    pub fallbacks: Counter,
    /// Row slots examined remotely by Page Stores.
    pub rows_scanned: Counter,
    /// Matching rows returned across the fabric.
    pub rows_returned: Counter,
    /// Bytes of row payload returned across the fabric.
    pub bytes_returned: Counter,
    /// Pages materialized remotely by Page Stores.
    pub pages_scanned: Counter,
    /// Pages fetched master-ward by the local fallback.
    pub fallback_pages: Counter,
    /// Bytes moved master-ward by the local fallback (pages × page size).
    pub fallback_bytes: Counter,
}

impl NdpStats {
    pub fn snapshot(&self) -> NdpStatsSnapshot {
        NdpStatsSnapshot {
            pushdown_scans: self.pushdown_scans.get(),
            slice_calls: self.slice_calls.get(),
            slice_retries: self.slice_retries.get(),
            fallbacks: self.fallbacks.get(),
            rows_scanned: self.rows_scanned.get(),
            rows_returned: self.rows_returned.get(),
            bytes_returned: self.bytes_returned.get(),
            pages_scanned: self.pages_scanned.get(),
            fallback_pages: self.fallback_pages.get(),
            fallback_bytes: self.fallback_bytes.get(),
        }
    }
}

/// Plain-value snapshot of [`NdpStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NdpStatsSnapshot {
    pub pushdown_scans: u64,
    pub slice_calls: u64,
    pub slice_retries: u64,
    pub fallbacks: u64,
    pub rows_scanned: u64,
    pub rows_returned: u64,
    pub bytes_returned: u64,
    pub pages_scanned: u64,
    pub fallback_pages: u64,
    pub fallback_bytes: u64,
}

impl NdpStatsSnapshot {
    /// Bytes that stayed on the Page Stores: what fetch-and-filter would
    /// have moved master-ward for the remotely scanned pages, minus what
    /// pushdown actually returned.
    pub fn bytes_saved_vs_fetch(&self) -> u64 {
        self.pages_scanned
            .saturating_mul(PAGE_SIZE as u64)
            .saturating_sub(self.bytes_returned)
    }
}

impl std::fmt::Display for NdpStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pushdown_scans={} slice_calls={} slice_retries={} fallbacks={} \
             rows_scanned={} rows_returned={} bytes_returned={} pages_scanned={} \
             fallback_pages={} fallback_bytes={} bytes_saved_vs_fetch={}",
            self.pushdown_scans,
            self.slice_calls,
            self.slice_retries,
            self.fallbacks,
            self.rows_scanned,
            self.rows_returned,
            self.bytes_returned,
            self.pages_scanned,
            self.fallback_pages,
            self.fallback_bytes,
            self.bytes_saved_vs_fetch(),
        )
    }
}

/// Counters for the batched read path (`Sal::read_pages`; printed by the
/// `readpath` bench and the fig7/fig9 gauge dumps).
#[derive(Debug, Default)]
pub struct ReadBatchStats {
    /// `read_pages` invocations (one per multi-page miss batch).
    pub batches: Counter,
    /// `ReadPages` RPCs issued, budget continuations included.
    pub batch_rpcs: Counter,
    /// Failed `ReadPages` attempts (replica skipped, next one tried).
    pub batch_retries: Counter,
    /// Page ids requested across all batches.
    pub pages_requested: Counter,
    /// Pages returned by successful `ReadPages` RPCs.
    pub pages_returned: Counter,
    /// Per-page failures inside otherwise-successful batches (recycled
    /// versions, torn materializations).
    pub partial_failures: Counter,
    /// Pages re-read through the single-page `ReadPage` repair path after
    /// the batch could not serve them.
    pub straggler_retries: Counter,
    /// Pages-per-RPC histogram: buckets 1, 2–4, 5–16, 17–64, 65+.
    pub pages_per_rpc: [Counter; 5],
}

impl ReadBatchStats {
    fn note_rpc_pages(&self, n: usize) {
        let bucket = match n {
            0..=1 => 0,
            2..=4 => 1,
            5..=16 => 2,
            17..=64 => 3,
            _ => 4,
        };
        self.pages_per_rpc[bucket].inc();
    }

    pub fn snapshot(&self) -> ReadBatchStatsSnapshot {
        ReadBatchStatsSnapshot {
            batches: self.batches.get(),
            batch_rpcs: self.batch_rpcs.get(),
            batch_retries: self.batch_retries.get(),
            pages_requested: self.pages_requested.get(),
            pages_returned: self.pages_returned.get(),
            partial_failures: self.partial_failures.get(),
            straggler_retries: self.straggler_retries.get(),
            pages_per_rpc: [
                self.pages_per_rpc[0].get(),
                self.pages_per_rpc[1].get(),
                self.pages_per_rpc[2].get(),
                self.pages_per_rpc[3].get(),
                self.pages_per_rpc[4].get(),
            ],
        }
    }
}

/// Plain-value snapshot of [`ReadBatchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadBatchStatsSnapshot {
    pub batches: u64,
    pub batch_rpcs: u64,
    pub batch_retries: u64,
    pub pages_requested: u64,
    pub pages_returned: u64,
    pub partial_failures: u64,
    pub straggler_retries: u64,
    pub pages_per_rpc: [u64; 5],
}

impl std::fmt::Display for ReadBatchStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batches={} batch_rpcs={} batch_retries={} pages_requested={} \
             pages_returned={} partial_failures={} straggler_retries={} \
             pages_per_rpc[1|2-4|5-16|17-64|65+]={:?}",
            self.batches,
            self.batch_rpcs,
            self.batch_retries,
            self.pages_requested,
            self.pages_returned,
            self.partial_failures,
            self.straggler_retries,
            self.pages_per_rpc,
        )
    }
}

/// Merged result of a pushed-down table scan: rows from every slice,
/// key-sorted, plus the combined aggregate state and a per-slice breakdown
/// of how each slice was executed.
#[derive(Clone, Debug, Default)]
pub struct TableScan {
    /// Projected matching rows, globally sorted by key.
    pub rows: Vec<(Vec<u8>, Vec<u8>)>,
    /// Combined aggregate state across all slices.
    pub agg: AggState,
    /// Slices answered by remote `ScanSlice` execution.
    pub pushdown_slices: usize,
    /// Slices that fell back to `ReadPage`-and-evaluate-locally.
    pub fallback_slices: usize,
}

/// Result of scanning one slice, before the planner merges.
#[derive(Debug, Default)]
struct SliceScanOutcome {
    rows: Vec<(Vec<u8>, Vec<u8>)>,
    agg: AggState,
    fallback: bool,
}

/// One fragment awaiting shipment to one replica. The fragment is shared
/// (`Arc`) across all replica pipes — the send path performs one encode
/// and zero deep clones per flush.
struct PipeJob {
    key: SliceKey,
    frag: Arc<SliceFragment>,
}

/// Longest run of queued fragments one grouped `WriteLogs` envelope may
/// carry. Bounds the latency a late-queued fragment can hide behind while
/// still collapsing bursts into few round trips.
const GROUPED_SHIP_MAX: usize = 8;

/// The send pipe to one Page Store replica node: a bounded queue drained by
/// at most one detached fabric-dispatcher job at a time (per-node FIFO). A
/// slow or dead replica fills its own queue and loses fragments to
/// shedding; it can no longer stall other replicas, grow an unbounded
/// backlog, or pin an idle OS thread (the failure modes of the old shared
/// unbounded channel and of thread-per-replica pipes).
struct PipeState {
    queue: VecDeque<PipeJob>,
    /// Whether a drain job for this node is live (queued or running on the
    /// dispatcher). At most one at a time keeps shipment per-node FIFO.
    draining: bool,
    in_flight: Gauge,
}

impl PipeState {
    fn new() -> Self {
        PipeState {
            queue: VecDeque::new(),
            draining: false,
            in_flight: Gauge::new(),
        }
    }
}

/// The Storage Abstraction Layer: one per database front end process.
pub struct Sal {
    pub db: DbId,
    /// The compute node this SAL runs on.
    pub me: NodeId,
    pub cfg: TaurusConfig,
    clock: ClockRef,
    pub logs: LogStoreCluster,
    pub pages: PageStoreCluster,
    /// N parallel log streams (`cfg.log_streams`); prepared flushes are
    /// assigned round-robin by global ticket. Stream 0 keeps the legacy
    /// single-stream PLog id namespace.
    streams: Vec<LogStream>,
    /// Append-path metrics shared by every stream (one logical log).
    log_store_stats: Arc<LogStoreStats>,
    pub(crate) state: Mutex<SalState>,
    /// Per-stream log-tail turnstiles, ordered by the stream-local ticket:
    /// each stream's tail slot is reserved in LSN order, the replicated 3/3
    /// appends then run unordered across all streams (this is where
    /// parallel flushes overlap), and durability commits via the
    /// contiguous-prefix walk over `SalState::flush_spans`.
    reserve_turns: Vec<Sequencer>,
    /// Signals waiters in [`Sal::flush`] whenever an in-flight log write
    /// completes (or fails). Paired with `state`.
    flush_cv: Condvar,
    /// Cluster-visible LSN (§3.5).
    cv_lsn: LsnWatermark,
    /// Highest LSN durable on Log Stores **as a contiguous prefix across
    /// all streams** (the commit point transactions ack against).
    durable_lsn: LsnWatermark,
    /// Per-stream durable watermarks (the LSN vector): entry `k` is the end
    /// of the newest span durable on stream `k`, whether or not earlier
    /// spans on other streams have landed yet.
    durable_vec: LsnVector,
    /// Periodically saved database persistent LSN — the recovery starting
    /// point (§4.3 "SAL periodically saves this value for recovery
    /// purposes"). Modeled as a durable control-plane cell that survives
    /// front-end crashes.
    anchor: Arc<LsnWatermark>,
    /// One bounded send pipe per Page Store replica node, created lazily on
    /// first fragment to that node and drained by the fabric dispatcher.
    pipes: Mutex<HashMap<NodeId, PipeState>>,
    /// Slices with fragments abandoned by a sender worker; drained by
    /// [`Sal::repair_parked`] (tick, recovery sweep, resurrection).
    parked: Mutex<HashSet<SliceKey>>,
    /// Replica nodes that exhausted a retry budget and have not proven
    /// themselves alive since. Deprioritized by read routing.
    pub(crate) suspects: Mutex<HashSet<NodeId>>,
    /// Failpoint for the slice-rebalance differential suite: when armed, the
    /// next elastic cut-over aborts between placement commit and delta
    /// replay, simulating a coordinator crash mid-cut-over.
    cutover_abort: AtomicBool,
    /// Self-handle for lazily spawned worker threads.
    myself: Weak<Sal>,
    /// Microseconds of delay injected per log flush while Page Store
    /// consolidation is behind ("the SAL throttles log writes on the
    /// master" to bound Log Directory growth — paper §7).
    throttle_us: AtomicU64,
    pub stats: SalStats,
    pub ndp_stats: NdpStats,
    pub read_batch_stats: ReadBatchStats,
}

impl std::fmt::Debug for Sal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sal")
            .field("db", &self.db)
            .field("cv_lsn", &self.cv_lsn.get())
            .field("durable_lsn", &self.durable_lsn.get())
            .finish()
    }
}

impl Sal {
    /// Creates the SAL for a brand-new database: allocates the log stream
    /// and registers nothing else — slices appear on first write.
    pub fn create(
        cfg: TaurusConfig,
        db: DbId,
        me: NodeId,
        logs: LogStoreCluster,
        pages: PageStoreCluster,
        anchor: Arc<LsnWatermark>,
    ) -> Result<Arc<Sal>> {
        cfg.validate()?;
        let n = cfg.log_streams;
        let stats = Arc::new(LogStoreStats::default());
        let streams = (0..n)
            .map(|i| {
                LogStream::create_stream(
                    logs.clone(),
                    db,
                    me,
                    cfg.plog_size_limit,
                    cfg.log_append_window,
                    i as u32,
                    n > 1,
                    Arc::clone(&stats),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::build(
            cfg, db, me, logs, pages, streams, stats, anchor,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        cfg: TaurusConfig,
        db: DbId,
        me: NodeId,
        logs: LogStoreCluster,
        pages: PageStoreCluster,
        streams: Vec<LogStream>,
        log_store_stats: Arc<LogStoreStats>,
        anchor: Arc<LsnWatermark>,
    ) -> Arc<Sal> {
        let clock = logs.fabric.clock.clone();
        let n = streams.len();
        // `new_cyclic`: the SAL needs a `Weak` handle to itself so that
        // per-replica sender workers (spawned lazily, long after build)
        // can reach it without keeping it alive.
        Arc::new_cyclic(|myself| Sal {
            db,
            me,
            cfg,
            clock,
            logs,
            pages,
            streams,
            log_store_stats,
            state: Mutex::new(SalState::default()),
            reserve_turns: (0..n).map(|_| Sequencer::new()).collect(),
            flush_cv: Condvar::new(),
            cv_lsn: LsnWatermark::new(Lsn::ZERO),
            durable_lsn: LsnWatermark::new(Lsn::ZERO),
            durable_vec: LsnVector::new(n),
            anchor,
            pipes: Mutex::new(HashMap::new()),
            parked: Mutex::new(HashSet::new()),
            suspects: Mutex::new(HashSet::new()),
            myself: myself.clone(),
            cutover_abort: AtomicBool::new(false),
            throttle_us: AtomicU64::new(0),
            stats: SalStats::default(),
            ndp_stats: NdpStats::default(),
            read_batch_stats: ReadBatchStats::default(),
        })
    }

    // ==================================================================
    // Per-replica send pipeline
    // ==================================================================

    /// Enqueues a fragment on `node`'s pipe, creating the pipe on first
    /// use. Returns `false` if the queue was full and the fragment was
    /// shed for this replica. When no drain job is live for the node, one
    /// is submitted to the fabric dispatcher — the detached job captures
    /// only a `Weak` SAL handle, so a queued drain never keeps a torn-down
    /// deployment alive.
    ///
    /// Lock order: callers hold `state`; this takes `pipes` (and the
    /// dispatcher submission lock, a leaf). Never blocks — the foreground
    /// write path must not wait on a slow replica.
    fn enqueue_for(&self, node: NodeId, job: PipeJob) -> bool {
        let mut pipes = self.pipes.lock();
        let pipe = pipes.entry(node).or_insert_with(PipeState::new);
        if pipe.queue.len() >= self.cfg.sal_send_queue_depth {
            return false;
        }
        pipe.queue.push_back(job);
        if !pipe.draining {
            pipe.draining = true;
            let weak = self.myself.clone();
            self.pages.fabric.spawn_detached(move || {
                let Some(sal) = weak.upgrade() else { return };
                sal.drain_pipe(node);
            });
        }
        true
    }

    /// Drains one replica node's pipe on a dispatcher worker until the
    /// queue is empty, then clears the `draining` flag and exits (the next
    /// enqueue submits a fresh job). One drainer per node keeps shipment
    /// per-node FIFO. The jitter RNG is derived from the fabric seed and
    /// the node id: draws never touch the shared placement stream, so
    /// retry storms do not perturb placement determinism.
    ///
    /// With `rpc_coalescing`, a queued run of fragments is shipped as one
    /// grouped envelope (one round trip for the whole run); any slot that
    /// fails — or the whole envelope, if the node is down — falls back to
    /// the budgeted per-fragment retry path. Safe to re-send: Page Stores
    /// disregard duplicate log records.
    fn drain_pipe(&self, node: NodeId) {
        let mut rng = self.pages.fabric.derive_rng(0x5A4C_0000 ^ node.0);
        loop {
            let jobs: Vec<PipeJob> = {
                let mut pipes = self.pipes.lock();
                let Some(pipe) = pipes.get_mut(&node) else {
                    return;
                };
                if pipe.queue.is_empty() {
                    pipe.draining = false;
                    return;
                }
                let take = if self.cfg.rpc_coalescing {
                    pipe.queue.len().min(GROUPED_SHIP_MAX)
                } else {
                    1
                };
                let jobs: Vec<PipeJob> = pipe.queue.drain(..take).collect();
                pipe.in_flight.add(jobs.len() as u64);
                jobs
            };
            let n = jobs.len();
            if n > 1 {
                self.ship_grouped(node, &jobs, &mut rng);
            } else {
                self.ship_with_retry(node, &jobs[0], &mut rng);
            }
            let pipes = self.pipes.lock();
            if let Some(pipe) = pipes.get(&node) {
                pipe.in_flight.sub(n as u64);
            }
        }
    }

    /// Ships a run of fragments to one replica in a single grouped
    /// envelope. Fully successful slots are acked; failed slots (or the
    /// whole run when the envelope itself fails) are re-shipped in order
    /// through the per-fragment retry path, which owns parking, suspect
    /// demotion, and backoff.
    fn ship_grouped(&self, node: NodeId, jobs: &[PipeJob], rng: &mut StdRng) {
        let epochs: Vec<u64> = {
            let st = self.state.lock();
            jobs.iter()
                .map(|j| st.slices.get(&j.key).map(|s| s.epoch).unwrap_or(0))
                .collect()
        };
        self.stats.note_coalesced(jobs.len());
        let frags: Vec<(Arc<SliceFragment>, u64)> = jobs
            .iter()
            .zip(&epochs)
            .map(|(j, &e)| (Arc::clone(&j.frag), e))
            .collect();
        let mut slots = self
            .pages
            .write_logs_grouped(self.me, vec![(node, frags)])
            .pop()
            .unwrap_or_default();
        // Demux in order; a short (impossible) response fails the tail.
        slots.resize_with(jobs.len(), || Err(TaurusError::NodeUnavailable(node)));
        for (job, slot) in jobs.iter().zip(slots) {
            match slot {
                Ok(persistent) => {
                    self.on_write_ack(job.key, node, job.frag.last_lsn(), persistent);
                    self.note_replica_alive(node);
                }
                Err(_) => {
                    self.stats.grouped_fallback_slices.inc();
                    self.ship_with_retry(node, job, rng);
                }
            }
        }
    }

    /// Delivers one fragment to one replica, retrying failed attempts with
    /// exponential backoff + seeded jitter up to the configured budget.
    /// Exhausting the budget parks the slice and demotes the replica.
    fn ship_with_retry(&self, node: NodeId, job: &PipeJob, rng: &mut StdRng) {
        let last = job.frag.last_lsn();
        let limit = self.cfg.sal_write_retry_limit;
        let mut attempt: u32 = 0;
        loop {
            // Epoch-checked send (DESIGN.md §14): read the epoch at attempt
            // time so a refresh between retries is picked up.
            let epoch = {
                let st = self.state.lock();
                st.slices.get(&job.key).map(|s| s.epoch).unwrap_or(0)
            };
            let start = self.clock.now_us();
            match self
                .pages
                .write_logs_checked(node, self.me, &job.frag, epoch)
            {
                Ok(persistent) => {
                    self.on_write_ack(job.key, node, last, persistent);
                    self.note_replica_alive(node);
                    return;
                }
                Err(TaurusError::PlacementEpochMismatch { .. })
                | Err(TaurusError::SliceFenced { .. }) => {
                    // The slice moved (or was sealed) under this send — a
                    // placement race, not a replica-health problem: no
                    // suspect demotion, no backoff. Learn the new placement
                    // and hand the fragment to the repair path, which
                    // re-ships the records through the current owners.
                    self.stats.fragments_parked.inc();
                    self.refresh_placement();
                    self.parked.lock().insert(job.key);
                    self.repair_parked();
                    return;
                }
                Err(_) => {
                    let elapsed = self.clock.now_us().saturating_sub(start);
                    if elapsed > self.cfg.sal_write_attempt_timeout_us {
                        self.stats.write_timeouts.inc();
                    }
                    if attempt >= limit {
                        break;
                    }
                    attempt += 1;
                    self.stats.write_retries.inc();
                    let base = self.cfg.sal_write_backoff_us.max(1);
                    let backoff = base.saturating_mul(1u64 << (attempt - 1).min(16));
                    let jitter = rng.random_range(0..=(base / 2).max(1));
                    self.clock.sleep_us(backoff.saturating_add(jitter));
                }
            }
        }
        // Budget spent. Durability is already guaranteed by the Log
        // Stores; the slice is parked for repair-from-log instead of
        // waiting for the stall detector to notice the gap.
        self.stats.fragments_parked.inc();
        self.mark_suspect(node);
        self.parked.lock().insert(job.key);
        // A replica that is *up* but failing calls (flaky link, transient
        // overload) can be repaired right now; a dead one must wait for
        // the recovery sweep.
        if self.pages.is_live(node) {
            self.repair_parked();
        }
    }

    fn mark_suspect(&self, node: NodeId) {
        if self.suspects.lock().insert(node) {
            self.stats.suspect_demotions.inc();
        }
    }

    /// Resurrects a suspect replica after evidence it is serving again (a
    /// successful write ack or persistent-LSN progress). On the
    /// suspect→healthy *transition* — and only then, which bounds the
    /// repair→gossip→poll→resurrect recursion — parked slices are drained.
    fn note_replica_alive(&self, node: NodeId) {
        let resurrected = self.suspects.lock().remove(&node);
        if resurrected {
            self.stats.suspect_resurrections.inc();
            self.repair_parked();
        }
    }

    /// Whether a replica is currently demoted to suspect.
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspects.lock().contains(&node)
    }

    /// Slices currently parked for repair.
    pub fn parked_slices(&self) -> Vec<SliceKey> {
        let mut v: Vec<SliceKey> = self.parked.lock().iter().copied().collect();
        v.sort();
        v
    }

    /// Per-replica pipeline gauges: `(node, queued fragments, in-flight
    /// fragments)`, sorted by node. Exposed to benches and tests.
    pub fn pipeline_gauges(&self) -> Vec<(NodeId, u64, u64)> {
        let pipes = self.pipes.lock();
        let mut v: Vec<(NodeId, u64, u64)> = pipes
            .iter()
            .map(|(n, p)| (*n, p.queue.len() as u64, p.in_flight.get()))
            .collect();
        v.sort_by_key(|e| e.0);
        v
    }

    /// Snapshot of the bounded fabric dispatcher every fan-out from this
    /// SAL rides: queue depth, busy workers, inline/pool job counts.
    /// Exposed to benches (fig7/fig9/conn_scale) and tests.
    pub fn dispatch_stats(&self) -> taurus_fabric::DispatchSnapshot {
        self.pages.fabric.dispatch_snapshot()
    }

    /// Repairs every parked slice from the Log Stores and triggers
    /// targeted gossip; a slice is unparked once every replica has caught
    /// up to its flush LSN. Returns the number of slices unparked.
    ///
    /// Must not be called while holding `state`, `pipes`, `parked`, or
    /// `suspects`.
    pub fn repair_parked(&self) -> usize {
        let keys: Vec<SliceKey> = self.parked.lock().iter().copied().collect();
        let mut unparked = 0usize;
        for key in keys {
            let _ = self.repair_slice_from_logstores(key);
            self.trigger_gossip(key);
            let caught_up = {
                let st = self.state.lock();
                st.slices
                    .get(&key)
                    .map(|s| s.min_replica_persistent() >= s.flush_lsn)
                    .unwrap_or(true)
            };
            if caught_up && self.parked.lock().remove(&key) {
                unparked += 1;
            }
        }
        unparked
    }

    // ==================================================================
    // Write path (§4.1)
    // ==================================================================

    /// Appends a log-record group to the database log buffer. Flushes when
    /// the buffer is full. Does **not** guarantee durability — call
    /// [`Sal::flush`] for that (the engine does at commit).
    pub fn log_group(&self, group: LogRecordGroup) -> Result<()> {
        match self.buffer_group(group) {
            Some(p) => p.run(),
            None => Ok(()),
        }
    }

    /// Buffers a log-record group without performing any Log Store I/O.
    /// When the buffer crosses the flush threshold this returns a
    /// [`PendingFlush`] the caller runs *after* releasing any latches it
    /// holds: the engine appends under the exclusive B-tree latch (buffer
    /// order must equal LSN order), but the replicated append's network
    /// round trips must not run under it. A handle that is dropped without
    /// [`PendingFlush::run`] still performs the flush (errors latch into
    /// the SAL's failure state as usual), so the pipeline cannot wedge.
    pub fn buffer_group(&self, group: LogRecordGroup) -> Option<PendingFlush<'_>> {
        let prepared = {
            let mut st = self.state.lock();
            if st.log_buffer.is_empty() {
                st.log_buffer_opened_us = self.clock.now_us();
            }
            st.log_buffer_bytes += group.encoded_len();
            st.log_buffer.push(group);
            if st.log_buffer_bytes >= self.cfg.log_buffer_bytes {
                self.prepare_flush_locked(&mut st)
            } else {
                None
            }
        };
        prepared.map(|p| PendingFlush {
            sal: self,
            prepared: Some(p),
        })
    }

    /// Forces the database log buffer to the Log Stores. On return, every
    /// record passed to [`Sal::log_group`] so far is durable (3/3) and the
    /// transaction ack may be sent — including records handed to flushes
    /// still in flight on other threads when this call started. Returns the
    /// durable LSN.
    pub fn flush(&self) -> Result<Lsn> {
        let (prepared, target) = {
            let mut st = self.state.lock();
            // Adaptive group commit: while every stream already carries an
            // in-flight flush, queueing another tiny span buys nothing —
            // wait for a slot and let the buffer (the commit group) grow.
            // The waits are bounded: in-flight flushes are always driven by
            // the threads that prepared them, and completion (or failure)
            // notifies `flush_cv`. A buffer at the size threshold flushes
            // immediately regardless.
            while !st.log_buffer.is_empty()
                && st.flushes_in_flight >= self.streams.len()
                && st.log_buffer_bytes < self.cfg.log_buffer_bytes
            {
                self.stats.group_commit_waits.inc();
                self.flush_cv.wait(&mut st);
            }
            let p = self.prepare_flush_locked(&mut st);
            (p, st.last_prepared_end)
        };
        if let Some(p) = prepared {
            self.run_flush(p)?;
        }
        // Even after our own span lands, durability of the *caller's*
        // records rides on every earlier span across all streams: wait for
        // the contiguous durable prefix to reach the target.
        self.wait_durable(target)?;
        Ok(self.durable_lsn.get())
    }

    /// Blocks until the durable LSN (the contiguous cross-stream prefix)
    /// reaches `target`, or a flush at or below `target` has failed.
    fn wait_durable(&self, target: Lsn) -> Result<()> {
        if self.durable_lsn.get() >= target {
            return Ok(());
        }
        let mut st = self.state.lock();
        while self.durable_lsn.get() < target {
            if st.failed_at.is_valid() && st.failed_at <= target {
                return Err(TaurusError::Internal(format!(
                    "log flush failed at {}",
                    st.failed_at
                )));
            }
            self.flush_cv.wait(&mut st);
        }
        Ok(())
    }

    /// Takes the current log buffer as one pipelined flush unit, assigning
    /// it the next flush ticket. Cheap; called under the state lock. The
    /// caller must then drive [`Sal::run_flush`] (off the lock).
    fn prepare_flush_locked(&self, st: &mut SalState) -> Option<PreparedFlush> {
        if st.log_buffer.is_empty() {
            return None;
        }
        let groups = std::mem::take(&mut st.log_buffer);
        st.log_buffer_bytes = 0;
        // min/max over all groups, not first/last: group *allocation* order
        // (LSN) and buffer *arrival* order can differ under concurrent
        // writers, and the monotonicity invariant below keys off the range.
        let first = groups
            .iter()
            .map(|g| g.first_lsn())
            .min()
            .unwrap_or(Lsn::ZERO);
        let end = groups
            .iter()
            .map(|g| g.end_lsn())
            .max()
            .unwrap_or(Lsn::ZERO);
        // Successive flushes carry strictly increasing LSN ranges; the
        // durable LSN itself may lag — earlier tickets can still be in
        // flight.
        taurus_common::invariant!(
            "log-flush-monotonic",
            end >= first && first > st.last_prepared_end.max(self.durable_lsn.get()),
            "flush [{first}..{end}] does not extend prepared {} / durable {}",
            st.last_prepared_end,
            self.durable_lsn.get()
        );
        let prev_end = st.last_prepared_end;
        st.last_prepared_end = end;
        let ticket = st.next_flush_ticket;
        st.next_flush_ticket += 1;
        // Round-robin stream assignment by global ticket; the per-stream
        // ticket is dense, ordering that stream's reservation turnstile.
        let stream = (ticket % self.streams.len() as u64) as usize;
        let stream_ticket = ticket / self.streams.len() as u64;
        st.flush_spans.push_back(FlushSpan {
            first,
            end,
            stream,
            state: SpanState::InFlight,
        });
        st.flushes_in_flight += 1;
        Some(PreparedFlush {
            stream,
            stream_ticket,
            prev_end,
            first,
            end,
            groups,
        })
    }

    /// Drives one prepared flush through the log-write pipeline. The state
    /// lock is never held across the Log Store round trip: the stream's
    /// log-tail slot is reserved in stream-ticket order inside that
    /// stream's turnstile, the replicated 3/3 appends then run unordered
    /// across all streams (this is where parallel flushes overlap, bounded
    /// by each stream's append window), and durability bookkeeping commits
    /// via the contiguous-prefix walk over the global span window.
    fn run_flush(&self, p: PreparedFlush) -> Result<()> {
        // Backpressure: while consolidation is behind, each flush pays a
        // small delay so the Log Directories stop growing (§7).
        let throttle = self.throttle_us.load(Ordering::Relaxed);
        if throttle > 0 {
            self.clock.sleep_us(throttle);
        }
        // Encode the whole flush group into one batch frame (no lock held):
        // the Log Store sees one fat append per group, and the frame header
        // carries the cross-stream chain link recovery needs.
        let data = encode_batch(&p.groups, p.prev_end, p.first, p.end);
        // Step 2: reserve the stream's log-tail slot, in per-stream LSN
        // order. The RAII ticket guard advances the turnstile on every exit
        // path (including unwinds), so a failing reservation cannot wedge
        // later tickets on this stream.
        let reserved = {
            let _turn = self.reserve_turns[p.stream].ticket_guard(p.stream_ticket);
            self.streams[p.stream].reserve_append(p.first, p.end, data.len() as u64)
        };
        // Step 3: durable on all Log Store replicas. The *global* commit
        // point (durable LSN) advances only when the span joins the
        // contiguous durable prefix across all streams.
        let appended = reserved.and_then(|res| self.streams[p.stream].complete_append(res, data));
        match appended {
            Ok(()) => {
                self.durable_vec.advance(p.stream, p.end);
                self.finish_flush(p)
            }
            Err(e) => {
                let mut st = self.state.lock();
                Self::mark_span(&mut st, p.first, SpanState::Failed);
                st.flushes_in_flight -= 1;
                self.advance_durable_prefix_locked(&mut st);
                self.flush_cv.notify_all();
                Err(e)
            }
        }
    }

    /// Post-append bookkeeping for one durable flush: parks the span's
    /// groups as `Durable` in the global window and advances the durable
    /// prefix as far as it now reaches — which may commit this span, spans
    /// other streams finished earlier, or neither (when an earlier span is
    /// still in flight; whoever lands it commits for both).
    fn finish_flush(&self, p: PreparedFlush) -> Result<()> {
        // Create any missing slices before taking `state`: the CreateSlice
        // RPC must not run under the SAL's central lock. This must happen
        // before the span is marked durable — the prefix walk distributes
        // records into `SalState::slices` and may run on another thread.
        let keys: Vec<SliceKey> = {
            let mut v = Vec::new();
            for g in &p.groups {
                for rec in &g.records {
                    let key = self
                        .pages
                        .route_write(self.db, rec.page, self.cfg.pages_per_slice);
                    if !v.contains(&key) {
                        v.push(key);
                    }
                }
            }
            v
        };
        let ensured = self.ensure_slices(&keys);
        let mut st = self.state.lock();
        match ensured {
            // The records are durable but the SAL cannot home them: treat
            // as a failed flush (the span would otherwise wedge the window).
            Err(e) => {
                Self::mark_span(&mut st, p.first, SpanState::Failed);
                st.flushes_in_flight -= 1;
                self.advance_durable_prefix_locked(&mut st);
                self.flush_cv.notify_all();
                Err(e)
            }
            Ok(()) => {
                Self::mark_span(&mut st, p.first, SpanState::Durable(p.groups));
                st.flushes_in_flight -= 1;
                self.advance_durable_prefix_locked(&mut st);
                self.flush_cv.notify_all();
                if st.failed_at.is_valid() && p.end > st.failed_at {
                    // An earlier flush failed: our records are durable but
                    // sit behind a hole in the log, so they can never be
                    // acknowledged or made visible.
                    return Err(TaurusError::Internal(format!(
                        "log flush failed at {}",
                        st.failed_at
                    )));
                }
                Ok(())
            }
        }
    }

    /// Records the completion state of the span starting at `first` (span
    /// ranges are disjoint, so `first` identifies it).
    fn mark_span(st: &mut SalState, first: Lsn, state: SpanState) {
        if let Some(span) = st.flush_spans.iter_mut().find(|s| s.first == first) {
            span.state = state;
        }
    }

    /// Pops the contiguous prefix of `Durable` spans off the global window,
    /// advancing the durable LSN and distributing each span's records into
    /// per-slice buffers — the LSN-vector commit rule: a span becomes
    /// visible only once every earlier span (on any stream) is durable. A
    /// `Failed` span at the front latches `failed_at` and stops the walk
    /// permanently; an `InFlight` span just stops it for now.
    fn advance_durable_prefix_locked(&self, st: &mut SalState) {
        loop {
            match st.flush_spans.front_mut() {
                None => return,
                Some(span) => match &mut span.state {
                    SpanState::InFlight => return,
                    SpanState::Failed => {
                        if !st.failed_at.is_valid() {
                            st.failed_at = span.end;
                        }
                        return;
                    }
                    SpanState::Durable(groups) => {
                        let groups = std::mem::take(groups);
                        let (stream, end) = (span.stream, span.end);
                        st.flush_spans.pop_front();
                        taurus_common::invariant!(
                            "lsn-vector-covers-durable",
                            self.durable_vec.get(stream) >= end,
                            "stream {stream} vector {} behind committing span end {end}",
                            self.durable_vec.get(stream)
                        );
                        self.durable_lsn.advance(end);
                        self.stats.log_flushes.inc();
                        self.distribute_span_locked(st, end, groups);
                    }
                },
            }
        }
    }

    /// Distributes one committed span's records into per-slice buffers and
    /// tracks the span for CV-LSN advancement. Runs under `state`, on
    /// whichever thread's flush completion pulled the span off the window.
    fn distribute_span_locked(&self, st: &mut SalState, end: Lsn, groups: Vec<LogRecordGroup>) {
        let mut touched: HashMap<SliceKey, Lsn> = HashMap::new();
        for g in groups {
            for rec in g.records {
                // Placement is a leaf lock below `state` (PR 6 lock order),
                // so routing under the state lock is safe.
                let key = self
                    .pages
                    .route_write(self.db, rec.page, self.cfg.pages_per_slice);
                let Some(slice) = st.slices.get_mut(&key) else {
                    // `finish_flush` verified the slice before marking the
                    // span durable, and slices are never removed.
                    taurus_common::invariant!(
                        "pending-needs-bounded",
                        false,
                        "slice {key} vanished after ensure"
                    );
                    continue;
                };
                if slice.buffer.is_empty() {
                    slice.buffer_opened_us = self.clock.now_us();
                }
                slice.buffer_bytes += rec.encoded_len();
                // Max, not last-iterated: with out-of-LSN-order iteration a
                // plain insert could record a mid-buffer LSN as the slice's
                // requirement, letting the CV-LSN advance before the
                // buffer's true tail reached a replica.
                touched
                    .entry(key)
                    .and_modify(|l| *l = (*l).max(rec.lsn))
                    .or_insert(rec.lsn);
                slice.buffer.push(rec);
            }
        }
        taurus_common::invariant!(
            "pending-needs-bounded",
            touched.values().all(|l| *l <= end),
            "slice requirement exceeds buffer end {end}"
        );
        // Track the buffer for CV-LSN advancement (§3.5).
        st.pending.push_back(PendingBuffer {
            end_lsn: end,
            needs: touched,
        });
        // Flush slice buffers that crossed the size threshold.
        let keys: Vec<SliceKey> = st
            .slices
            .iter()
            .filter(|(_, s)| s.buffer_bytes >= self.cfg.slice_buffer_bytes)
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            self.flush_slice_locked(st, key);
        }
        self.advance_cv_locked(st);
    }

    /// Recomputes the write-throttle from the Page Stores' consolidation
    /// backlog. Called from [`Sal::tick`]; cheap (one gauge per server).
    pub fn update_throttle(&self) {
        let backlog = self.pages.max_backlog_pressure();
        let limit = self.cfg.consolidation_backlog_limit;
        let throttle = if backlog > limit {
            // Proportional: 1µs per KiB over the limit, capped at 5ms.
            (((backlog - limit) / 1024) as u64).min(5_000)
        } else {
            0
        };
        self.throttle_us.store(throttle, Ordering::Relaxed);
    }

    /// Current injected per-flush throttle (µs); 0 when consolidation keeps up.
    pub fn current_throttle_us(&self) -> u64 {
        self.throttle_us.load(Ordering::Relaxed)
    }

    /// Periodic driver: flushes slice buffers whose timeout expired and
    /// drains parked repairs once their replicas look reachable. Call this
    /// from a timer (or rely on the next log flush).
    pub fn tick(&self) {
        self.update_throttle();
        let now = self.clock.now_us();
        // Idle group commit: a log buffer that has been sitting open past
        // the idle deadline flushes now instead of waiting for the next
        // commit to push it out (adaptive sizing shrinks back under light
        // load).
        let idle_flush = {
            let mut st = self.state.lock();
            if !st.log_buffer.is_empty()
                && now.saturating_sub(st.log_buffer_opened_us) >= self.cfg.log_group_commit_idle_us
            {
                self.prepare_flush_locked(&mut st)
            } else {
                None
            }
        };
        if let Some(p) = idle_flush {
            // Errors latch into `failed_at`; `flush()` callers observe them.
            let _ = self.run_flush(p);
        }
        {
            let mut st = self.state.lock();
            let keys: Vec<SliceKey> = st
                .slices
                .iter()
                .filter(|(_, s)| {
                    !s.buffer.is_empty()
                        && now.saturating_sub(s.buffer_opened_us) >= self.cfg.slice_flush_timeout_us
                })
                .map(|(k, _)| *k)
                .collect();
            for key in keys {
                self.flush_slice_locked(&mut st, key);
            }
        }
        // Parked repairs: skip while every suspect is still unreachable —
        // repair-from-log cannot land anywhere and gossip would spin.
        if !self.parked.lock().is_empty() {
            let worth_trying = {
                let suspects = self.suspects.lock();
                suspects.is_empty() || suspects.iter().any(|n| self.pages.is_live(*n))
            };
            if worth_trying {
                self.repair_parked();
            }
        }
    }

    /// Forces every slice buffer out (quiesce; used by tests and shutdown).
    pub fn flush_all_slices(&self) {
        let mut st = self.state.lock();
        let keys: Vec<SliceKey> = st
            .slices
            .iter()
            .filter(|(_, s)| !s.buffer.is_empty())
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            self.flush_slice_locked(&mut st, key);
        }
    }

    /// Makes sure every key in `keys` has a slice entry, without holding
    /// `state` across the CreateSlice RPC: membership is checked under the
    /// lock, the round trips run unlocked (cluster + server creates are
    /// idempotent), and the results fold back in with `or_insert` so a
    /// racing creator wins exactly once. Slices are never removed from the
    /// map, so an entry observed here stays valid for later lookups.
    pub(crate) fn ensure_slices(&self, keys: &[SliceKey]) -> Result<()> {
        let missing: Vec<SliceKey> = {
            let st = self.state.lock();
            keys.iter()
                .copied()
                .filter(|k| !st.slices.contains_key(k))
                .collect()
        };
        if missing.is_empty() {
            return Ok(());
        }
        let mut created: Vec<(SliceKey, Vec<NodeId>)> = Vec::with_capacity(missing.len());
        for key in missing {
            created.push((key, self.pages.create_slice(key, self.me)?));
        }
        let mut st = self.state.lock();
        for (key, replicas) in created {
            let view = self.pages.placement_view(key);
            let slice = st
                .slices
                .entry(key)
                .or_insert_with(|| SliceState::new(replicas));
            if let Some(view) = view {
                slice.epoch = slice.epoch.max(view.epoch);
                if slice.fence.is_none() {
                    if let Some(f) = view.fence_lsn {
                        // Discovered a slice that is *already* retired (this
                        // SAL was not the cut-over coordinator — recovery,
                        // or a late first read). It will never take writes;
                        // seal it at its fence so it cannot gate progress.
                        slice.fence = Some(f);
                        slice.flush_lsn = slice.flush_lsn.max(f);
                        slice.acked_lsn = slice.acked_lsn.max(f);
                    }
                }
            }
        }
        Ok(())
    }

    /// Ships the slice buffer as one fragment to all replicas via their
    /// per-replica pipes (Step 4; SAL will consider it safe after ONE ack —
    /// Step 5). One fragment is built and shared by `Arc` — no deep clone
    /// per replica. A replica whose queue is full loses the fragment
    /// (shedding): its slice is parked for repair-from-log and the replica
    /// is demoted to suspect, so one slow node cannot grow an unbounded
    /// backlog or stall the foreground write path.
    pub(crate) fn flush_slice_locked(&self, st: &mut SalState, key: SliceKey) {
        let Some(slice) = st.slices.get_mut(&key) else {
            return;
        };
        if slice.buffer.is_empty() {
            return;
        }
        let mut records = std::mem::take(&mut slice.buffer);
        slice.buffer_bytes = 0;
        records.sort_by_key(|r| r.lsn);
        let frag = Arc::new(SliceFragment::new(key, slice.flush_lsn, records));
        slice.flush_lsn = frag.last_lsn();
        self.stats.slice_flushes.inc();
        self.stats.slice_write_ops.add(frag.records.len() as u64);
        self.stats
            .slice_write_bytes
            .add(frag.payload_bytes() as u64);
        let replicas = slice.replicas.clone();
        let mut shed: Vec<NodeId> = Vec::new();
        for &node in &replicas {
            let sent = self.enqueue_for(
                node,
                PipeJob {
                    key,
                    frag: Arc::clone(&frag),
                },
            );
            if !sent {
                shed.push(node);
            }
        }
        for node in shed {
            self.stats.queue_full_drops.inc();
            self.stats.fragments_parked.inc();
            self.mark_suspect(node);
            self.parked.lock().insert(key);
            // No immediate repair here: `state` is held, and the node's
            // worker is still busy draining a full queue. tick()/recovery
            // will drain the parked set.
        }
    }

    /// Ack handler: first-replica acknowledgment releases the buffer and
    /// can advance the CV-LSN; every ack updates the piggybacked persistent
    /// LSN (§4.3).
    pub(crate) fn on_write_ack(
        &self,
        key: SliceKey,
        node: NodeId,
        frag_last: Lsn,
        persistent: Lsn,
    ) {
        let mut st = self.state.lock();
        let now = self.clock.now_us();
        if let Some(slice) = st.slices.get_mut(&key) {
            // A slice write can only be acked after its records were made
            // durable on the Log Stores (step 2-3 precedes step 4).
            taurus_common::invariant!(
                "slice-ack-behind-durable",
                frag_last <= self.durable_lsn.get(),
                "{key}: ack {frag_last} past durable {}",
                self.durable_lsn.get()
            );
            slice.acked_lsn = slice.acked_lsn.max(frag_last);
            let prev = slice
                .replica_persistent
                .insert(node, persistent)
                .unwrap_or(Lsn::ZERO);
            if persistent > prev {
                slice.last_progress_us = now;
            }
        }
        self.advance_cv_locked(&mut st);
    }

    /// CV-LSN advancement: pop pending log buffers in order while all their
    /// slice writes are acked by ≥1 replica.
    fn advance_cv_locked(&self, st: &mut SalState) {
        while let Some(front) = st.pending.front() {
            let satisfied = front.needs.iter().all(|(key, lsn)| {
                // A missing slice was GC'd as a retired cut-over parent,
                // which requires its fence — and so every LSN it ever
                // owned — below the recycle LSN: the need is satisfied.
                st.slices
                    .get(key)
                    .map(|s| s.acked_lsn >= *lsn)
                    .unwrap_or(true)
            });
            if !satisfied {
                break;
            }
            let Some(done) = st.pending.pop_front() else {
                break;
            };
            // Quorum-before-ack: the CV-LSN (what replicas may read up to)
            // never overtakes the commit point.
            taurus_common::invariant!(
                "quorum-before-ack",
                done.end_lsn <= self.durable_lsn.get(),
                "cv {} advancing past durable {}",
                done.end_lsn,
                self.durable_lsn.get()
            );
            self.cv_lsn.advance(done.end_lsn);
        }
    }

    // ==================================================================
    // Read path (§4.2)
    // ==================================================================

    /// Reads the version of `page` at `as_of` (defaults to the highest LSN
    /// safe for the master: the slice's acked LSN). Tries replicas in
    /// latency order; a replica that is behind or down is skipped; if all
    /// fail, repairs via the Log Stores and retries (§4.2, §5.2).
    ///
    /// An explicit `as_of` is a *global* snapshot LSN, which a quiet
    /// slice's replicas can never reach (their persistent LSN tops out at
    /// the slice's own last record). The request is therefore capped at the
    /// slice's flush LSN — exact, because after the buffer flush below the
    /// slice has no records in `(flush_lsn, as_of]`, so the version at
    /// `as_of` *is* the version at `flush_lsn`.
    pub fn read_page(&self, page: PageId, as_of: Option<Lsn>) -> Result<PageBuf> {
        self.stats.page_reads.inc();
        let key = self
            .pages
            .route_read(self.db, page, self.cfg.pages_per_slice, as_of);
        let out = match self.read_page_at(key, page, as_of) {
            Err(TaurusError::SliceFenced { .. })
            | Err(TaurusError::PlacementEpochMismatch { .. }) => {
                // Raced an elastic cut-over: the slice we routed to was
                // sealed (or our epoch went stale) between routing and the
                // RPC. Learn the new placement and route once more.
                self.stats.read_retries.inc();
                self.refresh_placement();
                let key = self
                    .pages
                    .route_read(self.db, page, self.cfg.pages_per_slice, as_of);
                self.read_page_at(key, page, as_of)
            }
            other => other,
        };
        if out.is_ok() {
            self.stats.slice_read_ops.inc();
            self.stats.slice_read_bytes.add(PAGE_SIZE as u64);
        }
        out
    }

    /// [`Sal::read_page`] with the slice already routed.
    fn read_page_at(&self, key: SliceKey, page: PageId, as_of: Option<Lsn>) -> Result<PageBuf> {
        self.ensure_slices(&[key])?;
        let (replicas, as_of) = {
            let mut st = self.state.lock();
            let eff = match as_of {
                None => st.slices[&key].acked_lsn,
                Some(requested) => {
                    if requested > st.slices[&key].flush_lsn {
                        // Unflushed buffer records may fall inside the
                        // snapshot; ship them so the cap is exact.
                        self.flush_slice_locked(&mut st, key);
                    }
                    requested.min(st.slices[&key].flush_lsn)
                }
            };
            (self.replicas_by_latency(&st.slices[&key]), eff)
        };
        match self.try_read(key, page, as_of, &replicas) {
            Ok(buf) => Ok(buf),
            Err(_) => {
                // All replicas failed: the rare cascading-failure path. Pull
                // the missing records from the Log Stores, resend, retry
                // once (paper §4.2: "SAL recognizes this situation and
                // repairs data using Log Stores").
                self.repair_slice_from_logstores(key)?;
                // Re-snapshot the replica list: the repair (or a concurrent
                // rebuild) may have moved the slice to different nodes, and
                // the pre-repair snapshot would retry exactly the replicas
                // that just failed.
                self.refresh_placement();
                let replicas = {
                    let st = self.state.lock();
                    match st.slices.get(&key) {
                        Some(slice) => self.replicas_by_latency(slice),
                        None => replicas,
                    }
                };
                self.try_read(key, page, as_of, &replicas)
            }
        }
    }

    fn try_read(
        &self,
        key: SliceKey,
        page: PageId,
        as_of: Lsn,
        replicas: &[NodeId],
    ) -> Result<PageBuf> {
        let mut last_err = TaurusError::AllReplicasFailed(key);
        for &node in replicas {
            let start = self.clock.now_us();
            match self.pages.read_page_from(node, self.me, key, page, as_of) {
                Ok((buf, _)) => {
                    self.note_read_latency(key, node, self.clock.now_us() - start);
                    return Ok(buf);
                }
                Err(e) => {
                    // Feed the EWMA on failure too, with a penalty: a
                    // replica that errors instantly must not keep the best
                    // (lowest) latency score and stay first in the routing
                    // order — that starves the healthy replicas.
                    let elapsed = self.clock.now_us().saturating_sub(start);
                    self.note_read_latency(key, node, elapsed.max(1).saturating_mul(4));
                    self.stats.read_retries.inc();
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Replicas in preferred read order: healthy before suspect, then by
    /// EWMA latency. A replica with no recorded latency gets the mean of
    /// the known ones (not 0.0, which would always route the first read of
    /// every slice to an unmeasured — possibly failing — replica).
    fn replicas_by_latency(&self, slice: &SliceState) -> Vec<NodeId> {
        let known: Vec<f64> = slice.read_latency_us.values().copied().collect();
        let unknown_default = if known.is_empty() {
            0.0
        } else {
            known.iter().sum::<f64>() / known.len() as f64
        };
        let suspects = self.suspects.lock();
        let mut nodes = slice.replicas.clone();
        nodes.sort_by(|a, b| {
            let sa = suspects.contains(a);
            let sb = suspects.contains(b);
            let la = slice
                .read_latency_us
                .get(a)
                .copied()
                .unwrap_or(unknown_default);
            let lb = slice
                .read_latency_us
                .get(b)
                .copied()
                .unwrap_or(unknown_default);
            (sa, la)
                .partial_cmp(&(sb, lb))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        nodes
    }

    fn note_read_latency(&self, key: SliceKey, node: NodeId, us: u64) {
        let mut st = self.state.lock();
        if let Some(slice) = st.slices.get_mut(&key) {
            let ewma = slice.read_latency_us.entry(node).or_insert(us as f64);
            *ewma = 0.8 * *ewma + 0.2 * us as f64;
        }
    }

    // ==================================================================
    // Batched read path
    // ==================================================================

    /// Reads many pages at one snapshot in as few round trips as possible:
    /// the ids are grouped by slice, slices are grouped by their primary
    /// replica's node, and (with `rpc_coalescing`) one grouped envelope per
    /// node is fanned out on the fabric's bounded dispatcher pool. Slices
    /// that cannot ride an envelope use one `ReadPages` RPC each — the same
    /// `(suspect, EWMA)` replica routing as [`Sal::read_page`], following
    /// budget continuations. Pages a batch could not serve (per-page failures, or
    /// every replica refusing the slice) are retried individually through
    /// `read_page`, which carries the Log-Store repair path — so the call
    /// returns exactly what N sequential `read_page` calls at the same
    /// `as_of` would, in request order.
    ///
    /// Snapshot handling matches `read_page`: `None` pins each slice at its
    /// acked LSN; an explicit `as_of` is a global snapshot capped per slice
    /// at the flush LSN after a buffer flush (exact — the slice has no
    /// records in `(flush_lsn, as_of]`).
    pub fn read_pages(&self, ids: &[PageId], as_of: Option<Lsn>) -> Result<Vec<(PageId, PageBuf)>> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        self.read_batch_stats.batches.inc();
        self.read_batch_stats.pages_requested.add(ids.len() as u64);
        // Group by slice, keeping first-seen order and dropping duplicates.
        let mut order: Vec<SliceKey> = Vec::new();
        let mut by_slice: HashMap<SliceKey, Vec<PageId>> = HashMap::new();
        for &page in ids {
            let key = self
                .pages
                .route_read(self.db, page, self.cfg.pages_per_slice, as_of);
            let group = by_slice.entry(key).or_insert_with(|| {
                order.push(key);
                Vec::new()
            });
            if !group.contains(&page) {
                group.push(page);
            }
        }
        self.ensure_slices(&order)?;
        let plan: Vec<(SliceKey, Vec<PageId>, Vec<NodeId>, Lsn)> = {
            let mut st = self.state.lock();
            let mut plan = Vec::with_capacity(order.len());
            for key in order {
                let eff = match as_of {
                    None => st.slices[&key].acked_lsn,
                    Some(requested) => {
                        if requested > st.slices[&key].flush_lsn {
                            self.flush_slice_locked(&mut st, key);
                        }
                        requested.min(st.slices[&key].flush_lsn)
                    }
                };
                let replicas = self.replicas_by_latency(&st.slices[&key]);
                let pages = by_slice.remove(&key).unwrap_or_default();
                plan.push((key, pages, replicas, eff));
            }
            plan
        };
        let mut outcomes: Vec<Result<Vec<(PageId, PageBuf)>>> = Vec::with_capacity(plan.len());
        let mut fallback: Vec<&(SliceKey, Vec<PageId>, Vec<NodeId>, Lsn)> = Vec::new();
        if self.cfg.rpc_coalescing && plan.len() > 1 {
            // Coalesce: every slice whose primary (best-routed) replica
            // lives on the same Page Store node rides ONE grouped fabric
            // envelope — one round trip, one latency charge — instead of
            // one `ReadPages` call per slice. A slice whose envelope fails,
            // or whose response carries a budget continuation, falls back
            // to the per-slice loop below (reads are idempotent, so the
            // retry returns byte-identical pages).
            let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
            for (i, entry) in plan.iter().enumerate() {
                match entry.2.first() {
                    Some(&node) => match groups.iter_mut().find(|(n, _)| *n == node) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((node, vec![i])),
                    },
                    None => fallback.push(entry),
                }
            }
            let requests: Vec<(NodeId, Vec<ReadPagesRequest>)> = groups
                .iter()
                .map(|(node, idxs)| {
                    let reqs = idxs
                        .iter()
                        .map(|&i| {
                            let (key, pages, _, eff) = &plan[i];
                            ReadPagesRequest {
                                key: *key,
                                as_of: *eff,
                                pages: pages.clone(),
                                max_pages: self.cfg.read_batch_max_pages,
                                max_bytes: self.cfg.read_batch_max_bytes,
                            }
                        })
                        .collect();
                    (*node, reqs)
                })
                .collect();
            let start = self.clock.now_us();
            let replies = self.pages.read_pages_grouped(self.me, requests);
            // One EWMA sample per slice, charged with the whole fan-out's
            // elapsed time: envelopes run concurrently on the dispatcher,
            // so this is each envelope's wall time plus any queueing — an
            // honest congestion signal for the routing order.
            let elapsed = self.clock.now_us().saturating_sub(start).max(1);
            for ((node, idxs), slots) in groups.iter().zip(replies) {
                self.stats.note_coalesced(idxs.len());
                let mut served_pages = 0usize;
                let mut any_ok = false;
                for (&i, slot) in idxs.iter().zip(slots) {
                    let entry = &plan[i];
                    let (key, pages, _, eff) = entry;
                    match slot {
                        Ok(resp) if !matches!(resp.resume_from, Some(r) if r < pages.len()) => {
                            any_ok = true;
                            served_pages += resp.pages.len();
                            self.note_read_latency(*key, *node, elapsed);
                            outcomes.push(self.finish_slice_batch(pages, resp.pages, *eff));
                        }
                        Ok(_) => {
                            self.stats.grouped_fallback_slices.inc();
                            fallback.push(entry);
                        }
                        Err(_) => {
                            // Same EWMA penalty as the per-slice path, so a
                            // dead primary sinks in the routing order.
                            self.note_read_latency(*key, *node, elapsed.saturating_mul(4));
                            self.read_batch_stats.batch_retries.inc();
                            self.stats.grouped_fallback_slices.inc();
                            fallback.push(entry);
                        }
                    }
                }
                if any_ok {
                    // A grouped envelope is one miss-path round trip.
                    self.read_batch_stats.batch_rpcs.inc();
                    self.read_batch_stats.note_rpc_pages(served_pages);
                }
            }
        } else {
            fallback.extend(plan.iter());
        }
        type SliceReadJob<'a> = Box<dyn FnOnce() -> Result<Vec<(PageId, PageBuf)>> + Send + 'a>;
        let jobs: Vec<SliceReadJob<'_>> = fallback
            .into_iter()
            .map(|(key, pages, replicas, eff)| {
                Box::new(move || self.read_slice_batch(*key, pages, replicas, *eff))
                    as SliceReadJob<'_>
            })
            .collect();
        outcomes.extend(self.pages.fabric.fan_out(jobs));
        let mut got: HashMap<PageId, PageBuf> = HashMap::new();
        for res in outcomes {
            for (page, buf) in res? {
                got.insert(page, buf);
            }
        }
        // Request order, duplicates included (each gets its own copy).
        let mut out = Vec::with_capacity(ids.len());
        for &page in ids {
            match got.get(&page) {
                Some(buf) => out.push((page, buf.clone())),
                None => return Err(TaurusError::Internal("batched read lost a page".into())),
            }
        }
        Ok(out)
    }

    /// Reads one slice's share of a batch: the budgeted `ReadPages`
    /// continuation loop against each replica in routing order (a replica
    /// that fails mid-continuation loses its partial result and the slice
    /// restarts on the next one — reads are idempotent), then per-page
    /// straggler retries through the single-page repair path.
    fn read_slice_batch(
        &self,
        key: SliceKey,
        pages: &[PageId],
        replicas: &[NodeId],
        as_of: Lsn,
    ) -> Result<Vec<(PageId, PageBuf)>> {
        let mut batch: Vec<(PageId, PageReadOutcome)> = Vec::new();
        'replicas: for &node in replicas {
            let mut remaining = pages;
            let mut acc: Vec<(PageId, PageReadOutcome)> = Vec::with_capacity(pages.len());
            loop {
                let call = ReadPagesRequest {
                    key,
                    as_of,
                    pages: remaining.to_vec(),
                    max_pages: self.cfg.read_batch_max_pages,
                    max_bytes: self.cfg.read_batch_max_bytes,
                };
                let start = self.clock.now_us();
                match self.pages.read_pages_from(node, self.me, &call) {
                    Ok(resp) => {
                        // One EWMA sample per batch RPC: batches and single
                        // reads feed the same routing signal.
                        self.note_read_latency(
                            key,
                            node,
                            self.clock.now_us().saturating_sub(start),
                        );
                        self.read_batch_stats.batch_rpcs.inc();
                        self.read_batch_stats.note_rpc_pages(resp.pages.len());
                        acc.extend(resp.pages);
                        match resp.resume_from {
                            Some(i) if i < remaining.len() => remaining = &remaining[i..],
                            _ => {
                                batch = acc;
                                break 'replicas;
                            }
                        }
                    }
                    Err(_) => {
                        // Same EWMA penalty as the ReadPage path, so a
                        // failing replica sinks in the routing order.
                        let elapsed = self.clock.now_us().saturating_sub(start);
                        self.note_read_latency(key, node, elapsed.max(1).saturating_mul(4));
                        self.read_batch_stats.batch_retries.inc();
                        continue 'replicas;
                    }
                }
            }
        }
        self.finish_slice_batch(pages, batch, as_of)
    }

    /// Turns one slice's `ReadPages` outcomes into served pages, retrying
    /// stragglers (per-page failures, or pages no replica served) through
    /// the single-page repair path. Shared by the per-slice continuation
    /// loop and the grouped (coalesced) envelope path.
    fn finish_slice_batch(
        &self,
        pages: &[PageId],
        batch: Vec<(PageId, PageReadOutcome)>,
        as_of: Lsn,
    ) -> Result<Vec<(PageId, PageBuf)>> {
        let mut served: HashMap<PageId, PageBuf> = HashMap::with_capacity(batch.len());
        for (page, outcome) in batch {
            match outcome {
                PageReadOutcome::Ok(buf, _) => {
                    self.read_batch_stats.pages_returned.inc();
                    served.insert(page, buf);
                }
                PageReadOutcome::Recycled { .. } | PageReadOutcome::Failed(_) => {
                    self.read_batch_stats.partial_failures.inc();
                }
            }
        }
        let mut out = Vec::with_capacity(pages.len());
        for &page in pages {
            match served.remove(&page) {
                Some(buf) => out.push((page, buf)),
                None => {
                    // Straggler: the single-page path repairs from the Log
                    // Stores if needed and surfaces the real per-page error
                    // (e.g. `VersionRecycled`) when nothing can serve it.
                    self.read_batch_stats.straggler_retries.inc();
                    out.push((page, self.read_page(page, Some(as_of))?));
                }
            }
        }
        Ok(out)
    }

    // ==================================================================
    // Near-data scan pushdown (NDP follow-on paper; PAPERS.md)
    // ==================================================================

    /// Plans and executes a pushed-down table scan at snapshot `as_of`:
    /// slices are grouped by primary replica node and (with
    /// `rpc_coalescing`) one grouped `ScanSlice` envelope per node is
    /// fanned out on the fabric's bounded dispatcher pool; remaining slices
    /// get one worker each on the same pool. Replicas are tried in the same
    /// `(suspect, EWMA)` order as `ReadPage`, with repair-and-retry and a
    /// `ReadPage`-and-evaluate-locally fallback per slice. Results are
    /// merged and key-sorted.
    ///
    /// Snapshot handling: per-slice persistent LSNs are slice-local, so a
    /// quiet slice's replicas can never reach a *global* `as_of` past the
    /// slice's own last record — the planner first flushes the slice
    /// buffer, then caps the slice's snapshot at its flush LSN. The cap is
    /// exact: the slice has no records in `(flush_lsn, as_of]`.
    pub fn scan_pushdown(&self, req: &ScanRequest, as_of: Lsn) -> Result<TableScan> {
        self.ndp_stats.pushdown_scans.inc();
        let plan: Vec<(SliceKey, Vec<NodeId>, Lsn)> = {
            let mut st = self.state.lock();
            let mut keys: Vec<SliceKey> = st.slices.keys().copied().collect();
            keys.sort();
            let mut plan = Vec::with_capacity(keys.len());
            for key in keys {
                self.flush_slice_locked(&mut st, key); // no-op when empty
                let Some(slice) = st.slices.get(&key) else {
                    continue;
                };
                // Retired cut-over parents are skipped: their successors
                // cover the key range at every scannable snapshot, and
                // scanning both would double-count the ingest overlap.
                // (Historical scans below a successor's base LSN are out of
                // scope — point reads route by fence via `route_read`.)
                if slice.fence.is_some() {
                    continue;
                }
                let eff = as_of.min(slice.flush_lsn);
                plan.push((key, self.replicas_by_latency(slice), eff));
            }
            plan
        };
        let mut outcomes: Vec<Result<SliceScanOutcome>> = Vec::with_capacity(plan.len());
        let mut fallback: Vec<&(SliceKey, Vec<NodeId>, Lsn)> = Vec::new();
        if self.cfg.rpc_coalescing && plan.len() > 1 {
            // Coalesce: one grouped `ScanSlice` envelope per primary node.
            // A slice whose envelope fails or whose response needs a budget
            // continuation restarts on the per-slice escalation path below
            // (idempotent; partial results are discarded, matching the
            // per-slice policy on mid-continuation failure).
            let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
            for (i, entry) in plan.iter().enumerate() {
                match entry.1.first() {
                    Some(&node) => match groups.iter_mut().find(|(n, _)| *n == node) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((node, vec![i])),
                    },
                    None => fallback.push(entry),
                }
            }
            let requests: Vec<(NodeId, Vec<ScanSliceRequest>)> = groups
                .iter()
                .map(|(node, idxs)| {
                    let calls = idxs
                        .iter()
                        .map(|&i| {
                            let (key, _, eff) = &plan[i];
                            ScanSliceRequest {
                                key: *key,
                                as_of: *eff,
                                req: req.clone(),
                                resume_after: None,
                                max_rows: self.cfg.ndp_scan_max_rows,
                                max_bytes: self.cfg.ndp_scan_max_bytes,
                            }
                        })
                        .collect();
                    (*node, calls)
                })
                .collect();
            let start = self.clock.now_us();
            let replies = self.pages.scan_slices_grouped(self.me, requests);
            let elapsed = self.clock.now_us().saturating_sub(start).max(1);
            for ((node, idxs), slots) in groups.iter().zip(replies) {
                self.stats.note_coalesced(idxs.len());
                let mut any_ok = false;
                for (&i, slot) in idxs.iter().zip(slots) {
                    let entry = &plan[i];
                    let key = entry.0;
                    match slot {
                        Ok(resp) if resp.next_page.is_none() => {
                            any_ok = true;
                            self.note_read_latency(key, *node, elapsed);
                            self.ndp_stats.rows_scanned.add(resp.rows_scanned);
                            self.ndp_stats.rows_returned.add(resp.rows.len() as u64);
                            self.ndp_stats.bytes_returned.add(resp.bytes_returned);
                            self.ndp_stats.pages_scanned.add(resp.pages_scanned);
                            let mut slice_out = SliceScanOutcome::default();
                            slice_out.agg.merge(&resp.agg);
                            slice_out.rows.extend(resp.rows);
                            outcomes.push(Ok(slice_out));
                        }
                        Ok(_) => {
                            self.stats.grouped_fallback_slices.inc();
                            fallback.push(entry);
                        }
                        Err(_) => {
                            self.note_read_latency(key, *node, elapsed.saturating_mul(4));
                            self.ndp_stats.slice_retries.inc();
                            self.stats.grouped_fallback_slices.inc();
                            fallback.push(entry);
                        }
                    }
                }
                if any_ok {
                    // A grouped envelope is one `ScanSlice` round trip.
                    self.ndp_stats.slice_calls.inc();
                }
            }
        } else {
            fallback.extend(plan.iter());
        }
        let jobs: Vec<Box<dyn FnOnce() -> Result<SliceScanOutcome> + Send + '_>> = fallback
            .into_iter()
            .map(|(key, replicas, eff)| {
                Box::new(move || self.scan_one_slice(req, *key, replicas, *eff))
                    as Box<dyn FnOnce() -> Result<SliceScanOutcome> + Send + '_>
            })
            .collect();
        outcomes.extend(self.pages.fabric.fan_out(jobs));
        let mut out = TableScan::default();
        for res in outcomes {
            let slice_out = res?;
            if slice_out.fallback {
                out.fallback_slices += 1;
            } else {
                out.pushdown_slices += 1;
            }
            out.rows.extend(slice_out.rows);
            out.agg.merge(&slice_out.agg);
        }
        // At one snapshot LSN, leaf pages partition the key space across
        // slices, so keys are globally unique — a plain sort restores the
        // B-tree scan order.
        out.rows.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Scans one slice: pushdown against replicas in routing order, then
    /// Log-Store repair + placement refresh + one more pushdown round, and
    /// finally the local `ReadPage` fallback (same escalation shape as
    /// [`Sal::read_page`]).
    fn scan_one_slice(
        &self,
        req: &ScanRequest,
        key: SliceKey,
        replicas: &[NodeId],
        as_of: Lsn,
    ) -> Result<SliceScanOutcome> {
        if let Ok(out) = self.scan_slice_remote(req, key, replicas, as_of) {
            return Ok(out);
        }
        let _ = self.repair_slice_from_logstores(key);
        self.refresh_placement();
        let refreshed = {
            let st = self.state.lock();
            match st.slices.get(&key) {
                Some(slice) => self.replicas_by_latency(slice),
                None => replicas.to_vec(),
            }
        };
        if let Ok(out) = self.scan_slice_remote(req, key, &refreshed, as_of) {
            return Ok(out);
        }
        self.scan_slice_local(req, key, &refreshed, as_of)
    }

    /// Runs the budgeted `ScanSlice` continuation loop against each replica
    /// in order. A replica that fails mid-continuation loses its partial
    /// result and the whole slice restarts on the next replica — reads are
    /// idempotent, and restarting keeps the response a pure function of one
    /// replica's directory.
    fn scan_slice_remote(
        &self,
        req: &ScanRequest,
        key: SliceKey,
        replicas: &[NodeId],
        as_of: Lsn,
    ) -> Result<SliceScanOutcome> {
        let mut last_err = TaurusError::AllReplicasFailed(key);
        'replicas: for &node in replicas {
            let mut call = ScanSliceRequest {
                key,
                as_of,
                req: req.clone(),
                resume_after: None,
                max_rows: self.cfg.ndp_scan_max_rows,
                max_bytes: self.cfg.ndp_scan_max_bytes,
            };
            let mut out = SliceScanOutcome::default();
            loop {
                let start = self.clock.now_us();
                match self.pages.scan_slice_from(node, self.me, &call) {
                    Ok(resp) => {
                        self.note_read_latency(
                            key,
                            node,
                            self.clock.now_us().saturating_sub(start),
                        );
                        self.ndp_stats.slice_calls.inc();
                        self.ndp_stats.rows_scanned.add(resp.rows_scanned);
                        self.ndp_stats.rows_returned.add(resp.rows.len() as u64);
                        self.ndp_stats.bytes_returned.add(resp.bytes_returned);
                        self.ndp_stats.pages_scanned.add(resp.pages_scanned);
                        out.rows.extend(resp.rows);
                        out.agg.merge(&resp.agg);
                        match resp.next_page {
                            Some(next) => call.resume_after = Some(next),
                            None => return Ok(out),
                        }
                    }
                    Err(e) => {
                        // Same EWMA penalty as the ReadPage path, so a
                        // failing replica sinks in the routing order.
                        let elapsed = self.clock.now_us().saturating_sub(start);
                        self.note_read_latency(key, node, elapsed.max(1).saturating_mul(4));
                        self.ndp_stats.slice_retries.inc();
                        last_err = e;
                        continue 'replicas;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// Fallback: fetch every page of the slice through the versioned
    /// `ReadPage` path (which has its own repair-and-retry) and run the
    /// *same* shared evaluator locally. The page inventory is the union
    /// across reachable replicas, so a replica missing directory entries
    /// cannot silently shrink the scan.
    fn scan_slice_local(
        &self,
        req: &ScanRequest,
        key: SliceKey,
        replicas: &[NodeId],
        as_of: Lsn,
    ) -> Result<SliceScanOutcome> {
        self.ndp_stats.fallbacks.inc();
        let mut pages: BTreeSet<PageId> = BTreeSet::new();
        let mut reachable = false;
        for &node in replicas {
            if let Ok(ids) = self.pages.page_ids_of(node, self.me, key) {
                reachable = true;
                pages.extend(ids);
            }
        }
        if !reachable {
            return Err(TaurusError::AllReplicasFailed(key));
        }
        let mut acc = ScanAccumulator::default();
        for page in pages {
            let buf = self.read_page(page, Some(as_of))?;
            self.ndp_stats.fallback_pages.inc();
            self.ndp_stats.fallback_bytes.add(PAGE_SIZE as u64);
            evaluate_leaf_page(&buf, req, &mut acc)?;
        }
        Ok(SliceScanOutcome {
            rows: acc.rows,
            agg: acc.agg,
            fallback: true,
        })
    }

    // ==================================================================
    // Truncation (§4.3) and repair (§5.2) — driven by RecoveryService
    // ==================================================================

    /// The database persistent LSN: the minimum persistent LSN across the
    /// slices that still have records not yet on all three replicas. Slices
    /// that are fully caught up do not constrain it (§4.3).
    pub fn database_persistent_lsn(&self) -> Lsn {
        let st = self.state.lock();
        let mut dbp = self.durable_lsn.get();
        for slice in st.slices.values() {
            let min = slice.min_replica_persistent();
            if min < slice.flush_lsn {
                dbp = dbp.min(min);
            }
        }
        dbp
    }

    /// Saves the database persistent LSN (recovery anchor) and deletes every
    /// PLog entirely below it (Fig. 3 steps 7-8). Returns PLogs deleted.
    pub fn truncate_log(&self) -> Result<usize> {
        let dbp = self.database_persistent_lsn();
        self.anchor.advance(dbp);
        let mut deleted = 0;
        for stream in &self.streams {
            deleted += stream.truncate_below(dbp)?;
        }
        Ok(deleted)
    }

    /// Polls `GetPersistentLSN` from every replica of every slice, as the
    /// paper's SAL does periodically for recently-updated slices. Returns
    /// slices whose reported value **decreased** — the Fig. 4(b) signal that
    /// a rebuilt replica lost records.
    pub fn poll_persistent_lsns(&self) -> Vec<SliceKey> {
        let snapshot: Vec<(SliceKey, Vec<NodeId>)> = {
            let st = self.state.lock();
            st.slices
                .iter()
                .map(|(k, s)| (*k, s.replicas.clone()))
                .collect()
        };
        let mut regressed = Vec::new();
        for (key, replicas) in snapshot {
            for node in replicas {
                let Ok(persistent) = self.pages.persistent_lsn_of(node, self.me, key) else {
                    continue;
                };
                let progressed = {
                    let mut st = self.state.lock();
                    let now = self.clock.now_us();
                    let Some(slice) = st.slices.get_mut(&key) else {
                        continue;
                    };
                    let prev = slice
                        .replica_persistent
                        .insert(node, persistent)
                        .unwrap_or(Lsn::ZERO);
                    if persistent < prev && !regressed.contains(&key) {
                        regressed.push(key);
                    }
                    if persistent > prev {
                        slice.last_progress_us = now;
                    }
                    persistent > prev
                };
                // A suspect that reports persistent-LSN progress is serving
                // again (outside the state lock: resurrection may drain
                // parked repairs).
                if progressed {
                    self.note_replica_alive(node);
                }
            }
        }
        regressed
    }

    /// Refreshes replica placement from the cluster manager (after a
    /// rebuild moved a slice replica to a new node).
    pub fn refresh_placement(&self) {
        let mut st = self.state.lock();
        for (key, slice) in st.slices.iter_mut() {
            let Some(view) = self.pages.placement_view(*key) else {
                // GC'd retired slice; `set_recycle_lsn` prunes its state.
                continue;
            };
            // Sync the elastic metadata first: epoch only ever advances, a
            // fence only ever appears (and both placement transitions go
            // together, so a refresh cannot see one without the other).
            slice.epoch = slice.epoch.max(view.epoch);
            if slice.fence.is_none() {
                if let Some(f) = view.fence_lsn {
                    slice.fence = Some(f);
                    slice.flush_lsn = slice.flush_lsn.max(f);
                    slice.acked_lsn = slice.acked_lsn.max(f);
                }
            }
            let current = view.nodes;
            if !current.is_empty() && current != slice.replicas {
                // A replacement replica inherits the expectation recorded for
                // the slot it fills: if the rebuilt replica reports a LOWER
                // persistent LSN than its predecessor, the SAL must see the
                // decrease (paper Fig. 4(b)), so the old value carries over.
                for (old, new) in slice.replicas.iter().zip(current.iter()) {
                    if old != new {
                        if let Some(prev) = slice.replica_persistent.remove(old) {
                            slice.replica_persistent.insert(*new, prev);
                        }
                        slice.read_latency_us.remove(old);
                        // The replaced node is out of the placement; its
                        // suspect mark must not shadow the fresh replica.
                        self.suspects.lock().remove(old);
                    }
                }
                slice.replicas = current;
            }
        }
    }

    /// Slices whose slowest replica has not made persistent-LSN progress
    /// for `stall_us` while lagging the flush LSN (§5.2 stall detection).
    pub fn stalled_slices(&self, stall_us: u64) -> Vec<SliceKey> {
        let now = self.clock.now_us();
        let st = self.state.lock();
        st.slices
            .iter()
            .filter(|(_, s)| {
                s.flush_lsn.is_valid()
                    && s.min_replica_persistent() < s.flush_lsn
                    && now.saturating_sub(s.last_progress_us) >= stall_us
            })
            .map(|(k, _)| *k)
            .collect()
    }

    /// Repairs a slice by reading records from the Log Stores and resending
    /// to each replica exactly what it is missing, chained at that replica's
    /// own persistent LSN so the fragment connects (§5.2, Fig. 4(b)/(c)).
    /// Returns the number of fragments resent.
    pub fn repair_slice_from_logstores(&self, key: SliceKey) -> Result<usize> {
        let (replicas, flush_lsn) = {
            let st = self.state.lock();
            match st.slices.get(&key) {
                Some(s) => (s.replicas.clone(), s.flush_lsn),
                None => return Ok(0),
            }
        };
        // What this slice *owns* on the (page, LSN) plane: for static
        // placement the filter degenerates to the arithmetic key check; for
        // elastic slices it additionally excludes records below the seed
        // snapshot (already in the imported pages) and above the cut-over
        // fence (owned by the successor).
        let filter = self.pages.ingest_filter(key, self.cfg.pages_per_slice);
        let mut resent = 0usize;
        for node in replicas {
            let Ok(persistent) = self.pages.persistent_lsn_of(node, self.me, key) else {
                continue;
            };
            if persistent >= flush_lsn {
                continue;
            }
            // Read everything the replica might be missing from the Log
            // Stores (records are still there: truncation is gated on the
            // database persistent LSN, which this replica holds down).
            let groups = self.read_log_from(persistent.next())?;
            let mut records: Vec<LogRecord> = Vec::new();
            for g in groups {
                for rec in g.records {
                    let owned = match &filter {
                        Some(f) => f.admits(rec.page, rec.lsn),
                        None => {
                            SliceKey::new(self.db, rec.page.slice(self.cfg.pages_per_slice)) == key
                        }
                    };
                    if owned && rec.lsn > persistent && rec.lsn <= flush_lsn {
                        records.push(rec);
                    }
                }
            }
            if records.is_empty() {
                continue;
            }
            records.sort_by_key(|r| r.lsn);
            records.dedup_by_key(|r| r.lsn);
            let frag = SliceFragment::new(key, persistent, records);
            let last = frag.last_lsn();
            if let Ok(new_persistent) = self.pages.write_logs_to(node, self.me, &frag) {
                self.on_write_ack(key, node, last, new_persistent);
                self.note_replica_alive(node);
                resent += 1;
                self.stats.resends.inc();
            }
        }
        Ok(resent)
    }

    /// Triggers targeted gossip for a slice (the SAL-accelerated path that
    /// avoids waiting for the 30-minute periodic sweep, §5.2).
    pub fn trigger_gossip(&self, key: SliceKey) -> usize {
        self.stats.gossip_triggers.inc();
        let moved = self.pages.gossip(key);
        // Pull fresh persistent LSNs so acked/progress tracking reflects the
        // repair.
        let _ = self.poll_persistent_lsns();
        moved
    }

    /// Broadcasts a new recycle LSN to every slice (§3.4, §6: version purge
    /// driven by the minimum transaction-visible LSN). Snapshots cap the
    /// broadcast value: versions a snapshot pins are never purged.
    pub fn set_recycle_lsn(&self, lsn: Lsn) {
        let (keys, capped) = {
            let st = self.state.lock();
            let min_snapshot = st.snapshots.values().copied().min();
            let capped = match min_snapshot {
                Some(pin) => lsn.min(pin),
                None => lsn,
            };
            (st.slices.keys().copied().collect::<Vec<_>>(), capped)
        };
        // Never recycle versions a reader could still request: the broadcast
        // recycle LSN derives from replica read views, all capped at the
        // durable watermark.
        taurus_common::invariant!(
            "recycle-below-durable",
            capped <= self.durable_lsn.get(),
            "recycle {capped} past durable {}",
            self.durable_lsn.get()
        );
        for key in keys {
            // The broadcast now reports what it freed (directory pointers,
            // fragment bookkeeping, layer blobs) — account it so recycling
            // is observable instead of fire-and-forget.
            let report = self.pages.set_recycle_lsn(key, self.me, capped);
            self.stats
                .recycle_ptrs_purged
                .add(report.purged_ptrs as u64);
            self.stats
                .recycle_bytes_reclaimed
                .add(report.bytes_reclaimed);
        }
        // Retired cut-over parents whose fence fell below the recycle LSN
        // can no longer serve any live snapshot: drop their replicas and
        // forget their SliceStates (a dead retired slice must not pin the
        // database persistent LSN forever).
        if self.pages.gc_retired(capped, self.me) > 0 {
            let mut st = self.state.lock();
            st.slices
                .retain(|k, _| self.pages.placement_view(*k).is_some());
        }
    }

    // ==================================================================
    // Snapshots — constant-time thanks to append-only Page Stores
    // ==================================================================

    /// Creates (or replaces) a named snapshot at the current durable LSN.
    /// O(1): no data is copied anywhere; the LSN is simply pinned against
    /// recycling. Returns the snapshot LSN.
    pub fn create_snapshot(&self, name: &str) -> Lsn {
        let lsn = self.durable_lsn();
        self.state.lock().snapshots.insert(name.to_string(), lsn);
        lsn
    }

    /// The LSN a named snapshot pins, if it exists.
    pub fn snapshot_lsn(&self, name: &str) -> Option<Lsn> {
        self.state.lock().snapshots.get(name).copied()
    }

    /// Drops a named snapshot, releasing its versions for future recycling.
    pub fn drop_snapshot(&self, name: &str) -> bool {
        self.state.lock().snapshots.remove(name).is_some()
    }

    /// All named snapshots.
    pub fn snapshots(&self) -> Vec<(String, Lsn)> {
        let mut v: Vec<(String, Lsn)> = self
            .state
            .lock()
            .snapshots
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        v.sort();
        v
    }

    // ==================================================================
    // Introspection used by the engine
    // ==================================================================

    /// Cluster-visible LSN (§3.5).
    pub fn cv_lsn(&self) -> Lsn {
        self.cv_lsn.get()
    }

    /// Highest LSN durable on the Log Stores.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn.get()
    }

    /// Whether a dirty page whose newest modification is `lsn` may be
    /// evicted from the engine buffer pool: true once the log records have
    /// reached at least one Page Store replica (§4.2 eviction rule).
    pub fn can_evict(&self, page: PageId, lsn: Lsn) -> bool {
        let key = self
            .pages
            .route_write(self.db, page, self.cfg.pages_per_slice);
        let st = self.state.lock();
        st.slices
            .get(&key)
            .map(|s| s.acked_lsn >= lsn)
            .unwrap_or(false)
    }

    /// Per-slice acked LSN (the replica-read bound the master publishes to
    /// read replicas, §6).
    pub fn slice_acked_lsn(&self, page: PageId) -> Lsn {
        let key = self
            .pages
            .route_write(self.db, page, self.cfg.pages_per_slice);
        self.state
            .lock()
            .slices
            .get(&key)
            .map(|s| s.acked_lsn)
            .unwrap_or(Lsn::ZERO)
    }

    /// Minimum acked LSN across all slices: the highest LSN at which every
    /// page of the database is readable from some Page Store. Read replicas
    /// must not let their visible LSN overtake this (§6).
    pub fn min_acked_lsn(&self) -> Lsn {
        let st = self.state.lock();
        st.slices
            .values()
            // A sealed cut-over parent stops acking forever; once its acked
            // LSN reached the fence it owes nothing further and must not
            // cap the replica-visible LSN for the rest of time.
            .filter(|s| s.fence.is_none_or(|f| s.acked_lsn < f))
            .map(|s| s.acked_lsn)
            .min()
            .unwrap_or_else(|| self.durable_lsn.get())
    }

    /// Reads log-record groups from the Log Stores starting at `from` — the
    /// read-replica tail path (§6 step 3) and the recovery redo source.
    /// Groups are merged across all streams in LSN order.
    pub fn read_log_from(&self, from: Lsn) -> Result<Vec<LogRecordGroup>> {
        let mut groups = Vec::new();
        for stream in &self.streams {
            groups.extend(stream.read_groups_from(from)?);
        }
        groups.sort_by_key(|g| g.first_lsn());
        Ok(groups)
    }

    /// Log Store append-path metrics of this SAL's log streams (latency,
    /// in-flight window, seal-switches; one shared instance across all
    /// streams). Benches print this next to [`SalStats`].
    pub fn log_stats(&self) -> &LogStoreStats {
        &self.log_store_stats
    }

    /// Per-stream durable watermarks (the LSN vector); entry `k` may run
    /// ahead of [`Sal::durable_lsn`] while an earlier span on another
    /// stream is still in flight.
    pub fn durable_vector(&self) -> Vec<Lsn> {
        self.durable_vec.snapshot()
    }

    /// The saved recovery anchor (database persistent LSN at last save).
    pub fn recovery_anchor(&self) -> Lsn {
        self.anchor.get()
    }

    /// All slices the SAL currently manages.
    pub fn slice_keys(&self) -> Vec<SliceKey> {
        let mut v: Vec<SliceKey> = self.state.lock().slices.keys().copied().collect();
        v.sort();
        v
    }

    // ==================================================================
    // Elastic slice management (DESIGN.md §14)
    // ==================================================================

    /// Per-slice heat (read/write ops and bytes) summed across Page Store
    /// replicas, hottest first. The rebalancer's input signal.
    pub fn slice_heat(&self) -> Vec<(SliceKey, SliceHeatSnapshot)> {
        self.pages.heat_by_slice()
    }

    /// Heat aggregated per Page Store node (every replica counts), sorted
    /// by node — the spread the rebalancer narrows and benches print.
    pub fn node_heat(&self) -> Vec<(NodeId, SliceHeatSnapshot)> {
        self.pages.heat_by_node()
    }

    /// The current placement epoch (advances on every split/merge/move).
    pub fn placement_epoch(&self) -> u64 {
        self.pages.placement_epoch()
    }

    /// Arms the cut-over crash failpoint: the next elastic operation aborts
    /// after the placement commit but before the fence + delta replay,
    /// simulating a coordinator crash at the worst moment. Test-only.
    pub fn arm_cutover_abort(&self) {
        self.cutover_abort.store(true, Ordering::SeqCst);
    }

    /// Consumes the armed failpoint (one-shot).
    pub(crate) fn take_cutover_abort(&self) -> bool {
        self.cutover_abort.swap(false, Ordering::SeqCst)
    }

    // ==================================================================
    // SAL restart recovery (§5.3)
    // ==================================================================

    /// Rebuilds a SAL after a front-end crash. Reads the log from the saved
    /// database persistent LSN and resends to the Page Stores whatever their
    /// replicas are missing — the redo phase that must complete before the
    /// database accepts new requests. Returns the SAL and the highest LSN
    /// found in the log (the restart point for the LSN allocator).
    pub fn recover(
        cfg: TaurusConfig,
        db: DbId,
        me: NodeId,
        logs: LogStoreCluster,
        pages: PageStoreCluster,
        anchor: Arc<LsnWatermark>,
    ) -> Result<(Arc<Sal>, Lsn)> {
        cfg.validate()?;
        let n = cfg.log_streams;
        let stats = Arc::new(LogStoreStats::default());
        let mut streams = Vec::with_capacity(n);
        for i in 0..n {
            // A stream with no registered metadata never wrote (the DB ran
            // with fewer streams before the crash, or the stream stayed
            // idle and was truncated away): create it fresh.
            let stream = if logs.meta_plog_stream(db, i as u32).is_some() {
                LogStream::open_stream(
                    logs.clone(),
                    db,
                    me,
                    cfg.plog_size_limit,
                    cfg.log_append_window,
                    i as u32,
                    n > 1,
                    Arc::clone(&stats),
                )?
            } else {
                LogStream::create_stream(
                    logs.clone(),
                    db,
                    me,
                    cfg.plog_size_limit,
                    cfg.log_append_window,
                    i as u32,
                    n > 1,
                    Arc::clone(&stats),
                )?
            };
            streams.push(stream);
        }
        let sal = Self::build(cfg, db, me, logs, pages, streams, stats, anchor);

        let start = sal.anchor.get();
        // Merge the durable flush spans of every stream in LSN order, then
        // chain-walk the batch-frame links: each framed span records the
        // end of the span prepared before it (on any stream). The first
        // broken link is a log hole — the crash landed a later span on one
        // stream while an earlier span on another never made it. Nothing at
        // or past the hole was ever acknowledged (the durable LSN only
        // advances over the contiguous prefix), so the orphan frames are
        // physically discarded before replay.
        let mut frames = Vec::new();
        for stream in &sal.streams {
            frames.extend(stream.read_frames_from(start.next())?);
        }
        frames.sort_by_key(|f| f.first);
        let mut groups = Vec::new();
        let mut chain_end: Option<Lsn> = None;
        let mut hole = false;
        for f in frames {
            let chained = match (f.prev_end, chain_end) {
                // Legacy unframed group: single-stream log, no holes.
                (None, _) => true,
                // First span at/after the anchor: its predecessor ended at
                // or below the anchor (below when the anchor sits inside
                // this straddling span).
                (Some(p), None) => p <= start,
                (Some(p), Some(e)) => p == e,
            };
            if !chained {
                hole = true;
                break;
            }
            chain_end = Some(f.end);
            groups.extend(f.groups);
        }
        if hole {
            let cut = chain_end.unwrap_or(start);
            for stream in &sal.streams {
                stream.discard_after(cut)?;
            }
        }
        let mut max_lsn = start;
        // Partition the log by slice, tracking the last LSN per slice. With
        // elastic placement a record can be owed to *two* slices — a retired
        // cut-over parent (lsn at or below its fence) and its successor (lsn
        // above the seed base): the double-stored ingest interval. Replay to
        // every slice whose ownership filter admits the record; the static
        // arithmetic path is kept verbatim when the db has no dynamic
        // entries.
        let dynamic = sal.pages.has_dynamic(sal.db);
        let filters: Vec<(SliceKey, IngestFilter)> = if dynamic {
            sal.pages
                .all_slices()
                .into_iter()
                .filter(|k| k.db == sal.db)
                .filter_map(|k| {
                    sal.pages
                        .ingest_filter(k, sal.cfg.pages_per_slice)
                        .map(|f| (k, f))
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut by_slice: HashMap<SliceKey, Vec<LogRecord>> = HashMap::new();
        for g in groups {
            for rec in g.records {
                max_lsn = max_lsn.max(rec.lsn);
                if dynamic {
                    for (k, f) in &filters {
                        if f.admits(rec.page, rec.lsn) {
                            by_slice.entry(*k).or_default().push(rec.clone());
                        }
                    }
                } else {
                    let key = SliceKey::new(sal.db, rec.page.slice(sal.cfg.pages_per_slice));
                    by_slice.entry(key).or_default().push(rec);
                }
            }
        }
        // Also pick up slices that exist in the cluster but had no records
        // in the replayed window (retired parents included when elastic:
        // they still serve reads below their fence).
        let mut keys: Vec<SliceKey> = if dynamic {
            sal.pages.all_slices()
        } else {
            sal.pages.slices()
        }
        .into_iter()
        .filter(|k| k.db == sal.db)
        .collect();
        for k in by_slice.keys() {
            if !keys.contains(k) {
                keys.push(*k);
            }
        }
        sal.ensure_slices(&keys)?;
        sal.durable_lsn.advance(max_lsn);
        // Everything up to the recovered tail is durable on every stream's
        // prefix; seed the LSN vector so it agrees with the durable LSN.
        for i in 0..sal.streams.len() {
            sal.durable_vec.advance(i, max_lsn);
        }
        // The flush pipeline's monotonicity baseline starts where the
        // recovered log ends.
        sal.state.lock().last_prepared_end = max_lsn;
        // Redo: resend per replica exactly what it is missing, chained at
        // its own persistent LSN. Page Stores disregard duplicates.
        for key in keys {
            let replicas = sal.pages.replicas_of(key);
            let mut slice_flush = Lsn::ZERO;
            let mut max_persistent = Lsn::ZERO;
            if let Some(records) = by_slice.get(&key) {
                slice_flush = records.last().map(|r| r.lsn).unwrap_or(Lsn::ZERO);
            }
            for node in replicas {
                let Ok(persistent) = sal.pages.persistent_lsn_of(node, sal.me, key) else {
                    continue;
                };
                slice_flush = slice_flush.max(persistent);
                max_persistent = max_persistent.max(persistent);
                let missing: Vec<LogRecord> = by_slice
                    .get(&key)
                    .map(|records| {
                        records
                            .iter()
                            .filter(|r| r.lsn > persistent)
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default();
                if missing.is_empty() {
                    let mut st = sal.state.lock();
                    if let Some(s) = st.slices.get_mut(&key) {
                        s.replica_persistent.insert(node, persistent);
                    }
                    continue;
                }
                let frag = SliceFragment::new(key, persistent, missing);
                let last = frag.last_lsn();
                if let Ok(new_persistent) = sal.pages.write_logs_to(node, sal.me, &frag) {
                    sal.on_write_ack(key, node, last, new_persistent);
                    max_persistent = max_persistent.max(new_persistent);
                }
            }
            let mut st = sal.state.lock();
            if let Some(s) = st.slices.get_mut(&key) {
                s.flush_lsn = s.flush_lsn.max(slice_flush);
                // Records at or below a replica's persistent LSN are on that
                // replica by definition, so reads at this horizon are safe —
                // without this a freshly recovered SAL would read every page
                // at LSN 0 (i.e. as empty).
                s.acked_lsn = s.acked_lsn.max(max_persistent);
            }
        }
        sal.cv_lsn.advance(max_lsn);
        Ok((sal, max_lsn))
    }
}
