//! Versioned slice-placement map: the indirection that makes slices elastic.
//!
//! Before this module, placement was implicit: `PageId::slice()` arithmetic
//! named the slice and `PageStoreCluster::create_slice` froze its replica set
//! forever. The [`PlacementMap`] replaces that with an **epoch-stamped**
//! `SliceKey → replica set` table plus a per-database page-range overlay, so
//! a slice can be split, merged, or moved while the database is online
//! (DESIGN.md §14):
//!
//! - Every entry carries the **epoch** at which it was last changed and the
//!   global map epoch advances on every mutation. Data-path RPCs carry the
//!   caller's cached epoch; a mismatch returns
//!   [`TaurusError::PlacementEpochMismatch`] and the caller refreshes.
//! - A retired entry keeps its replica set and a **fence LSN** `F`: the old
//!   placement owns every version `<= F`, the successor owns `(F, ∞)`.
//!   Readers route by `(page, as_of)` — the owner is the entry with the
//!   smallest fence at or above `as_of` — so no page version is ever lost
//!   (the parent still serves history) or double-served (the fence
//!   partitions the LSN axis).
//! - Dynamic slices (split children, merge results) get ids from a disjoint
//!   namespace ([`DYNAMIC_SLICE_BASE`]) and explicit page ranges in the
//!   overlay; when a database has no dynamic slices, routing degenerates to
//!   the original arithmetic — the default path is byte-for-byte unchanged.
//!
//! The map itself is pure data guarded by one `RwLock` in the cluster; it
//! never performs fabric calls and never takes another lock, so it can be
//! read from under the SAL state lock (DESIGN.md §7 lock-order table).

use std::collections::{BTreeMap, HashMap};

use taurus_common::{DbId, Lsn, NodeId, PageId, Result, SliceId, SliceKey, TaurusError};

/// First slice id handed out to dynamically created slices (split children,
/// merge results). Arithmetic slice ids are `page / pages_per_slice`, which
/// stays far below this for any realistic page count, so the namespaces
/// never collide.
pub const DYNAMIC_SLICE_BASE: u64 = 1 << 32;

/// One slice's placement: where its replicas live and which LSN interval of
/// the database history it owns for its page range.
#[derive(Clone, Debug)]
pub struct PlacementEntry {
    /// Current replica set (after a move: the post-move set).
    pub nodes: Vec<NodeId>,
    /// Epoch at which this entry last changed. Compared against the epoch
    /// cached by RPC callers.
    pub epoch: u64,
    /// Page range `[start, end)` owned by the slice. `None` means the
    /// arithmetic range of the slice id (`[id*pps, (id+1)*pps)`), which keeps
    /// static entries independent of any one tenant's `pages_per_slice`.
    pub range: Option<(u64, u64)>,
    /// LSN of the layer snapshot this slice was seeded from. Records with
    /// `lsn <= base_lsn` arrived via `import_pages`, not the log; the slice's
    /// log history starts strictly above it. Zero for root slices.
    pub base_lsn: Lsn,
    /// Retirement fence: `Some(F)` means the slice was split/merged away and
    /// owns only versions `<= F`. `None` means active.
    pub fence_lsn: Option<Lsn>,
    /// Ex-replicas from moves, with the fence LSN at which each was cut off.
    /// Gossip keeps re-pushing the fence to these until GC drops their copy,
    /// so a node that was down during the move still learns it.
    pub retired_nodes: Vec<(NodeId, Lsn)>,
}

impl PlacementEntry {
    fn contains_page(&self, key: SliceKey, page: PageId, pps: u64) -> bool {
        match self.range {
            Some((start, end)) => page.0 >= start && page.0 < end,
            None => page.slice(pps) == key.slice,
        }
    }

    /// The page range, materializing the arithmetic default.
    pub fn range_of(&self, key: SliceKey, pps: u64) -> (u64, u64) {
        self.range
            .unwrap_or((key.slice.0 * pps, (key.slice.0 + 1) * pps))
    }
}

/// Ingest-interval filter for one slice: which log records belong to it.
/// Used by repair and recovery to partition the log. A record belongs iff
/// its page is in `[start, end)` and its LSN is in `(base, fence]` (fence
/// `None` = unbounded). Note the deliberate overlap with the parent's
/// interval at a cut-over: records in `(base, fence_parent]` are stored on
/// both generations but served by exactly one (the fence partitions reads).
#[derive(Clone, Copy, Debug)]
pub struct IngestFilter {
    pub start: u64,
    pub end: u64,
    pub base: Lsn,
    pub fence: Option<Lsn>,
}

impl IngestFilter {
    pub fn admits(&self, page: PageId, lsn: Lsn) -> bool {
        page.0 >= self.start
            && page.0 < self.end
            && lsn > self.base
            && self.fence.is_none_or(|f| lsn <= f)
    }
}

/// The versioned placement table. See module docs.
#[derive(Default)]
pub struct PlacementMap {
    /// Global version: bumped on every split/merge/move commit.
    epoch: u64,
    entries: HashMap<SliceKey, PlacementEntry>,
    /// Active dynamic owners per database: `start_page → (end_page, key)`.
    /// Empty until the first split/merge, so the common case is one
    /// `HashMap::get` miss on top of the arithmetic route.
    overrides: HashMap<DbId, BTreeMap<u64, (u64, SliceKey)>>,
    /// Retired slice keys per database (historical read routing).
    retired: HashMap<DbId, Vec<SliceKey>>,
    next_dynamic: u64,
}

impl PlacementMap {
    pub fn new() -> Self {
        PlacementMap {
            next_dynamic: DYNAMIC_SLICE_BASE,
            ..PlacementMap::default()
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn get(&self, key: SliceKey) -> Option<&PlacementEntry> {
        self.entries.get(&key)
    }

    /// Active slice keys, sorted (stable iteration for gossip/recovery).
    pub fn active_slices(&self) -> Vec<SliceKey> {
        let mut keys: Vec<SliceKey> = self
            .entries
            .iter()
            .filter(|(_, e)| e.fence_lsn.is_none())
            .map(|(k, _)| *k)
            .collect();
        keys.sort();
        keys
    }

    /// Every key with an entry (active + retired), sorted.
    pub fn all_slices(&self) -> Vec<SliceKey> {
        let mut keys: Vec<SliceKey> = self.entries.keys().copied().collect();
        keys.sort();
        keys
    }

    pub fn is_retired(&self, key: SliceKey) -> bool {
        self.entries
            .get(&key)
            .is_some_and(|e| e.fence_lsn.is_some())
    }

    /// Whether this database has any dynamic placement (splits/merges).
    pub fn has_dynamic(&self, db: DbId) -> bool {
        self.overrides.contains_key(&db) || self.retired.contains_key(&db)
    }

    /// Registers a root (arithmetic) slice if absent; returns its replica
    /// set either way. Root entries never bump the global epoch — creation
    /// is not a placement *change*, and keeping the epoch quiet preserves
    /// the pre-elastic determinism fingerprint.
    pub fn insert_root(&mut self, key: SliceKey, nodes: Vec<NodeId>) -> Vec<NodeId> {
        self.entries
            .entry(key)
            .or_insert_with(|| PlacementEntry {
                nodes,
                epoch: 0,
                range: None,
                base_lsn: Lsn::ZERO,
                fence_lsn: None,
                retired_nodes: Vec::new(),
            })
            .nodes
            .clone()
    }

    /// Allocates a fresh dynamic slice key for `db`.
    pub fn allocate_dynamic(&mut self, db: DbId) -> SliceKey {
        let id = self.next_dynamic;
        self.next_dynamic += 1;
        SliceKey::new(db, SliceId(id))
    }

    /// Replaces a failed node in an entry's replica set in place, WITHOUT
    /// bumping any epoch: replica rebuild (§5.2) keeps the placement
    /// generation — callers re-discover the node by refreshing, exactly as
    /// they did before the map was versioned.
    pub fn replace_node(&mut self, key: SliceKey, failed: NodeId, with: NodeId) {
        if let Some(entry) = self.entries.get_mut(&key) {
            if let Some(slot) = entry.nodes.iter_mut().find(|n| **n == failed) {
                *slot = with;
            }
        }
    }

    /// Routes a **write** (or a latest-version read): the active owner of
    /// the page right now.
    pub fn route_write(&self, db: DbId, page: PageId, pps: u64) -> SliceKey {
        if let Some(ranges) = self.overrides.get(&db) {
            if let Some((_, &(end, key))) = ranges.range(..=page.0).next_back() {
                if page.0 < end {
                    return key;
                }
            }
        }
        SliceKey::new(db, page.slice(pps))
    }

    /// Routes a **versioned read**: the owner of `page` as of `as_of` — the
    /// placement generation with the smallest fence at or above `as_of`
    /// (active = fence ∞). `None` routes like a write.
    pub fn route_read(&self, db: DbId, page: PageId, pps: u64, as_of: Option<Lsn>) -> SliceKey {
        let active = self.route_write(db, page, pps);
        let Some(as_of) = as_of else {
            return active;
        };
        let Some(retired) = self.retired.get(&db) else {
            return active;
        };
        let mut best: Option<(Lsn, SliceKey)> = None;
        for &key in retired {
            let Some(entry) = self.entries.get(&key) else {
                continue;
            };
            let Some(fence) = entry.fence_lsn else {
                continue;
            };
            if fence >= as_of && entry.contains_page(key, page, pps) {
                match best {
                    Some((b, _)) if b <= fence => {}
                    _ => best = Some((fence, key)),
                }
            }
        }
        best.map(|(_, k)| k).unwrap_or(active)
    }

    /// The ingest filter for `key` (see [`IngestFilter`]).
    pub fn ingest_filter(&self, key: SliceKey, pps: u64) -> Option<IngestFilter> {
        let entry = self.entries.get(&key)?;
        let (start, end) = entry.range_of(key, pps);
        Some(IngestFilter {
            start,
            end,
            base: entry.base_lsn,
            fence: entry.fence_lsn,
        })
    }

    /// Validates an RPC against the caller's cached epoch and the target
    /// node's membership. `write_last` is the fragment end for writes (lets
    /// an in-flight pre-cut-over write drain to a just-retired node).
    pub fn check_rpc(
        &self,
        key: SliceKey,
        node: NodeId,
        have_epoch: u64,
        write_last: Option<Lsn>,
    ) -> Result<()> {
        let entry = self
            .entries
            .get(&key)
            .ok_or(TaurusError::SliceNotFound(key))?;
        if entry.epoch != have_epoch {
            return Err(TaurusError::PlacementEpochMismatch {
                slice: key,
                have: have_epoch,
                current: entry.epoch,
            });
        }
        if entry.nodes.contains(&node) {
            return Ok(());
        }
        // A moved-away replica may still drain writes at or below its fence.
        if let Some((_, fence)) = entry.retired_nodes.iter().find(|(n, _)| *n == node) {
            if write_last.is_some_and(|last| last <= *fence) {
                return Ok(());
            }
        }
        Err(TaurusError::PlacementEpochMismatch {
            slice: key,
            have: have_epoch,
            current: entry.epoch,
        })
    }

    /// Commits a split: retires `parent` at `fence` and installs two
    /// children covering its range with the cut at `at_page`. Children were
    /// seeded from the parent's layer snapshot at `base`. Returns the new
    /// global epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn commit_split(
        &mut self,
        parent: SliceKey,
        pps: u64,
        at_page: u64,
        left: (SliceKey, Vec<NodeId>),
        right: (SliceKey, Vec<NodeId>),
        base: Lsn,
        fence: Lsn,
    ) -> Result<u64> {
        let (start, end) = {
            let entry = self
                .entries
                .get(&parent)
                .ok_or(TaurusError::SliceNotFound(parent))?;
            if entry.fence_lsn.is_some() {
                return Err(TaurusError::Internal(format!(
                    "split of already-retired slice {parent}"
                )));
            }
            entry.range_of(parent, pps)
        };
        if !(at_page > start && at_page < end) {
            return Err(TaurusError::Internal(format!(
                "split point {at_page} outside ({start}, {end}) of {parent}"
            )));
        }
        taurus_common::invariant!(
            "cutover-fence-covers-base",
            base <= fence,
            "split of {} seeded at {} but fenced at {}",
            parent,
            base,
            fence
        );
        self.epoch += 1;
        let epoch = self.epoch;
        let Some(parent_entry) = self.entries.get_mut(&parent) else {
            return Err(TaurusError::SliceNotFound(parent));
        };
        parent_entry.fence_lsn = Some(fence);
        parent_entry.range = Some((start, end));
        parent_entry.epoch = epoch;
        for (key, nodes, lo, hi) in [
            (left.0, left.1, start, at_page),
            (right.0, right.1, at_page, end),
        ] {
            self.entries.insert(
                key,
                PlacementEntry {
                    nodes,
                    epoch,
                    range: Some((lo, hi)),
                    base_lsn: base,
                    fence_lsn: None,
                    retired_nodes: Vec::new(),
                },
            );
            let ranges = self.overrides.entry(parent.db).or_default();
            ranges.insert(lo, (hi, key));
        }
        // The parent may itself have been a dynamic child: drop its override
        // now that the children's ranges cover it.
        if let Some(ranges) = self.overrides.get_mut(&parent.db) {
            if ranges.get(&start).is_some_and(|(_, k)| *k == parent) {
                ranges.remove(&start);
            }
        }
        self.retired.entry(parent.db).or_default().push(parent);
        Ok(epoch)
    }

    /// Commits a merge of two adjacent active slices into `merged`, retiring
    /// both parents at `fence`. Returns the new global epoch.
    pub fn commit_merge(
        &mut self,
        left: SliceKey,
        right: SliceKey,
        pps: u64,
        merged: (SliceKey, Vec<NodeId>),
        base: Lsn,
        fence: Lsn,
    ) -> Result<u64> {
        if left.db != right.db {
            return Err(TaurusError::Internal(
                "merge across databases is not a thing".into(),
            ));
        }
        let (ls, le) = self
            .entries
            .get(&left)
            .filter(|e| e.fence_lsn.is_none())
            .map(|e| e.range_of(left, pps))
            .ok_or(TaurusError::SliceNotFound(left))?;
        let (rs, re) = self
            .entries
            .get(&right)
            .filter(|e| e.fence_lsn.is_none())
            .map(|e| e.range_of(right, pps))
            .ok_or(TaurusError::SliceNotFound(right))?;
        if le != rs {
            return Err(TaurusError::Internal(format!(
                "merge of non-adjacent slices {left} [{ls},{le}) and {right} [{rs},{re})"
            )));
        }
        taurus_common::invariant!(
            "cutover-fence-covers-base",
            base <= fence,
            "merge into {} seeded at {} but fenced at {}",
            merged.0,
            base,
            fence
        );
        self.epoch += 1;
        let epoch = self.epoch;
        for (key, lo, hi) in [(left, ls, le), (right, rs, re)] {
            let Some(entry) = self.entries.get_mut(&key) else {
                return Err(TaurusError::SliceNotFound(key));
            };
            entry.fence_lsn = Some(fence);
            entry.range = Some((lo, hi));
            entry.epoch = epoch;
            if let Some(ranges) = self.overrides.get_mut(&key.db) {
                if ranges.get(&lo).is_some_and(|(_, k)| *k == key) {
                    ranges.remove(&lo);
                }
            }
            self.retired.entry(key.db).or_default().push(key);
        }
        self.entries.insert(
            merged.0,
            PlacementEntry {
                nodes: merged.1,
                epoch,
                range: Some((ls, re)),
                base_lsn: base,
                fence_lsn: None,
                retired_nodes: Vec::new(),
            },
        );
        self.overrides
            .entry(left.db)
            .or_default()
            .insert(ls, (re, merged.0));
        Ok(epoch)
    }

    /// Commits a replica move: `from` leaves the replica set (fenced at
    /// `fence`), `to` takes its position. Returns the new global epoch.
    pub fn commit_move(
        &mut self,
        key: SliceKey,
        from: NodeId,
        to: NodeId,
        fence: Lsn,
    ) -> Result<u64> {
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or(TaurusError::SliceNotFound(key))?;
        let Some(slot) = entry.nodes.iter().position(|n| *n == from) else {
            return Err(TaurusError::Internal(format!(
                "move of {key}: {from} is not a replica"
            )));
        };
        if entry.nodes.contains(&to) {
            return Err(TaurusError::Internal(format!(
                "move of {key}: {to} already hosts it"
            )));
        }
        self.epoch += 1;
        entry.epoch = self.epoch;
        entry.nodes[slot] = to;
        entry.retired_nodes.retain(|(n, _)| *n != to);
        entry.retired_nodes.push((from, fence));
        Ok(self.epoch)
    }

    /// Drops retired state no versioned read can reach any more (fence below
    /// the recycle LSN). Returns `(key, nodes)` pairs whose on-server
    /// replicas the caller should drop: fully retired slices and moved-away
    /// ex-replicas.
    pub fn gc_below(&mut self, recycle: Lsn) -> Vec<(SliceKey, Vec<NodeId>)> {
        let mut drop_list: Vec<(SliceKey, Vec<NodeId>)> = Vec::new();
        let mut dead_keys: Vec<SliceKey> = Vec::new();
        for (&key, entry) in self.entries.iter_mut() {
            if let Some(fence) = entry.fence_lsn {
                if fence < recycle {
                    dead_keys.push(key);
                    continue;
                }
            }
            let (dead, live): (Vec<_>, Vec<_>) = entry
                .retired_nodes
                .drain(..)
                .partition(|(_, fence)| *fence < recycle);
            entry.retired_nodes = live;
            if !dead.is_empty() {
                drop_list.push((key, dead.into_iter().map(|(n, _)| n).collect()));
            }
        }
        dead_keys.sort();
        for key in dead_keys {
            if let Some(entry) = self.entries.remove(&key) {
                let mut nodes = entry.nodes;
                nodes.extend(entry.retired_nodes.into_iter().map(|(n, _)| n));
                drop_list.push((key, nodes));
            }
            if let Some(list) = self.retired.get_mut(&key.db) {
                list.retain(|k| *k != key);
                if list.is_empty() {
                    self.retired.remove(&key.db);
                }
            }
        }
        drop_list.sort_by_key(|(k, _)| *k);
        drop_list
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    const PPS: u64 = 64;

    fn key(id: u64) -> SliceKey {
        SliceKey::new(DbId(1), SliceId(id))
    }

    fn nodes(ids: &[u64]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn arithmetic_fast_path_without_dynamic_entries() {
        let mut m = PlacementMap::new();
        m.insert_root(key(0), nodes(&[1, 2, 3]));
        m.insert_root(key(1), nodes(&[2, 3, 4]));
        assert_eq!(m.route_write(DbId(1), PageId(5), PPS), key(0));
        assert_eq!(m.route_write(DbId(1), PageId(64), PPS), key(1));
        assert_eq!(
            m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(999))),
            key(0)
        );
        assert_eq!(m.epoch(), 0);
        assert!(!m.has_dynamic(DbId(1)));
        // Re-inserting returns the original replica set (first placement wins).
        assert_eq!(m.insert_root(key(0), nodes(&[7, 8, 9])), nodes(&[1, 2, 3]));
    }

    #[test]
    fn split_routes_writes_to_children_and_history_to_parent() {
        let mut m = PlacementMap::new();
        m.insert_root(key(0), nodes(&[1, 2, 3]));
        let l = m.allocate_dynamic(DbId(1));
        let r = m.allocate_dynamic(DbId(1));
        assert!(l.slice.0 >= DYNAMIC_SLICE_BASE && r.slice.0 > l.slice.0);
        m.commit_split(
            key(0),
            PPS,
            32,
            (l, nodes(&[1, 2, 3])),
            (r, nodes(&[4, 5, 6])),
            Lsn(100),
            Lsn(150),
        )
        .unwrap();
        assert_eq!(m.epoch(), 1);
        // Writes route to the children by page range.
        assert_eq!(m.route_write(DbId(1), PageId(5), PPS), l);
        assert_eq!(m.route_write(DbId(1), PageId(40), PPS), r);
        // Reads at or below the fence route to the retired parent; above it,
        // to the children.
        assert_eq!(
            m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(150))),
            key(0)
        );
        assert_eq!(m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(151))), l);
        assert_eq!(
            m.route_read(DbId(1), PageId(40), PPS, Some(Lsn(10))),
            key(0)
        );
        assert_eq!(m.route_read(DbId(1), PageId(40), PPS, None), r);
        // Other databases are untouched.
        assert_eq!(
            m.route_write(DbId(2), PageId(5), PPS),
            SliceKey::new(DbId(2), SliceId(0))
        );
        // Ingest filters: parent takes (0, 150] over the whole range, right
        // child takes (100, ∞) over [32, 64).
        let pf = m.ingest_filter(key(0), PPS).unwrap();
        assert!(pf.admits(PageId(40), Lsn(150)));
        assert!(!pf.admits(PageId(40), Lsn(151)));
        let rf = m.ingest_filter(r, PPS).unwrap();
        assert!(rf.admits(PageId(40), Lsn(101)));
        assert!(!rf.admits(PageId(40), Lsn(100)));
        assert!(!rf.admits(PageId(5), Lsn(120)));
        // Overlap: lsn 120 on page 40 is admitted by both generations but
        // served by exactly one (fence partitions route_read).
        assert!(pf.admits(PageId(40), Lsn(120)) && rf.admits(PageId(40), Lsn(120)));
    }

    #[test]
    fn nested_split_picks_smallest_covering_fence() {
        let mut m = PlacementMap::new();
        m.insert_root(key(0), nodes(&[1, 2, 3]));
        let l = m.allocate_dynamic(DbId(1));
        let r = m.allocate_dynamic(DbId(1));
        m.commit_split(
            key(0),
            PPS,
            32,
            (l, nodes(&[1, 2, 3])),
            (r, nodes(&[4, 5, 6])),
            Lsn(100),
            Lsn(150),
        )
        .unwrap();
        let ll = m.allocate_dynamic(DbId(1));
        let lr = m.allocate_dynamic(DbId(1));
        m.commit_split(
            l,
            PPS,
            16,
            (ll, nodes(&[1, 2, 3])),
            (lr, nodes(&[2, 3, 4])),
            Lsn(200),
            Lsn(250),
        )
        .unwrap();
        assert_eq!(m.epoch(), 2);
        // Page 5 history: <=150 → root, 151..=250 → l, >250 → ll.
        assert_eq!(
            m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(150))),
            key(0)
        );
        assert_eq!(m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(200))), l);
        assert_eq!(m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(251))), ll);
        assert_eq!(m.route_write(DbId(1), PageId(20), PPS), lr);
        // Right child of the first split is unaffected.
        assert_eq!(m.route_write(DbId(1), PageId(40), PPS), r);
    }

    #[test]
    fn merge_restores_one_owner_and_keeps_history() {
        let mut m = PlacementMap::new();
        m.insert_root(key(0), nodes(&[1, 2, 3]));
        let l = m.allocate_dynamic(DbId(1));
        let r = m.allocate_dynamic(DbId(1));
        m.commit_split(
            key(0),
            PPS,
            32,
            (l, nodes(&[1, 2, 3])),
            (r, nodes(&[4, 5, 6])),
            Lsn(100),
            Lsn(150),
        )
        .unwrap();
        let merged = m.allocate_dynamic(DbId(1));
        m.commit_merge(l, r, PPS, (merged, nodes(&[1, 2, 3])), Lsn(300), Lsn(400))
            .unwrap();
        assert_eq!(m.route_write(DbId(1), PageId(5), PPS), merged);
        assert_eq!(m.route_write(DbId(1), PageId(40), PPS), merged);
        // History: 120 → root (fence 150 is smallest >= 120); 200 → l.
        assert_eq!(
            m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(120))),
            key(0)
        );
        assert_eq!(m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(200))), l);
        assert_eq!(
            m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(401))),
            merged
        );
        // Merging non-adjacent or retired slices is refused.
        let x = m.allocate_dynamic(DbId(1));
        assert!(m
            .commit_merge(l, r, PPS, (x, nodes(&[1])), Lsn(500), Lsn(600))
            .is_err());
    }

    #[test]
    fn move_swaps_replica_and_checks_epochs() {
        let mut m = PlacementMap::new();
        m.insert_root(key(0), nodes(&[1, 2, 3]));
        assert!(m.check_rpc(key(0), NodeId(2), 0, None).is_ok());
        let epoch = m
            .commit_move(key(0), NodeId(2), NodeId(7), Lsn(90))
            .unwrap();
        assert_eq!(m.get(key(0)).unwrap().nodes, nodes(&[1, 7, 3]));
        // Stale epoch is refused; fresh epoch with the new node passes.
        assert!(matches!(
            m.check_rpc(key(0), NodeId(7), 0, None),
            Err(TaurusError::PlacementEpochMismatch { have: 0, current, .. }) if current == epoch
        ));
        assert!(m.check_rpc(key(0), NodeId(7), epoch, None).is_ok());
        // The moved-away node may drain writes at or below its fence only.
        assert!(m.check_rpc(key(0), NodeId(2), epoch, Some(Lsn(90))).is_ok());
        assert!(m
            .check_rpc(key(0), NodeId(2), epoch, Some(Lsn(91)))
            .is_err());
        assert!(m.check_rpc(key(0), NodeId(2), epoch, None).is_err());
        // Moving to an existing replica or from a non-replica is refused.
        assert!(m
            .commit_move(key(0), NodeId(1), NodeId(3), Lsn(95))
            .is_err());
        assert!(m
            .commit_move(key(0), NodeId(2), NodeId(9), Lsn(95))
            .is_err());
    }

    #[test]
    fn gc_drops_unreachable_history() {
        let mut m = PlacementMap::new();
        m.insert_root(key(0), nodes(&[1, 2, 3]));
        let l = m.allocate_dynamic(DbId(1));
        let r = m.allocate_dynamic(DbId(1));
        m.commit_split(
            key(0),
            PPS,
            32,
            (l, nodes(&[1, 2, 3])),
            (r, nodes(&[4, 5, 6])),
            Lsn(100),
            Lsn(150),
        )
        .unwrap();
        m.commit_move(l, NodeId(1), NodeId(8), Lsn(180)).unwrap();
        // Recycle below both fences: nothing to drop.
        assert!(m.gc_below(Lsn(150)).is_empty());
        // Recycle above the split fence but not the move fence: the parent
        // goes; the moved-away ex-replica stays.
        let dropped = m.gc_below(Lsn(151));
        assert_eq!(dropped, vec![(key(0), nodes(&[1, 2, 3]))]);
        assert!(m.get(key(0)).is_none());
        // History reads for as_of <= 150 now fall through to the active
        // owner (those versions are below recycle, unreadable anyway).
        assert_eq!(m.route_read(DbId(1), PageId(5), PPS, Some(Lsn(120))), l);
        // Recycle above the move fence: node 1's ex-copy of `l` goes too.
        let dropped = m.gc_below(Lsn(200));
        assert_eq!(dropped, vec![(l, nodes(&[1]))]);
        assert!(m.get(l).unwrap().retired_nodes.is_empty());
    }
}
