//! Pluggable time.
//!
//! Failure drills (short-term vs long-term failures, gossip intervals, flush
//! timeouts) must be reproducible, so every component that consults time does
//! so through a [`Clock`]. Production-style runs use [`SystemClock`]; tests
//! use [`ManualClock`] and advance time explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of monotonic microsecond time plus the ability to wait.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time in microseconds since an arbitrary epoch.
    fn now_us(&self) -> u64;

    /// Block the calling thread for `us` microseconds of this clock's time.
    /// On a [`ManualClock`] this advances virtual time instead of blocking.
    fn sleep_us(&self, us: u64);
}

/// Shared handle to a clock.
pub type ClockRef = Arc<dyn Clock>;

/// Real wall-clock time.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            // The one legitimate wall-clock read: the origin the pluggable
            // clock abstraction is built on.
            // taurus-lint: allow(direct-clock) -- SystemClock origin
            origin: Instant::now(),
        }
    }

    /// Convenience constructor returning a shared handle.
    pub fn shared() -> ClockRef {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn sleep_us(&self, us: u64) {
        if us == 0 {
            return;
        }
        // Short waits spin: on coarse-timer kernels thread::sleep costs
        // ~1ms regardless of the requested duration, which would flatten
        // every simulated latency ratio (e.g. the 20µs-append vs
        // 70µs-random-write asymmetry the benchmarks rely on). Spinning
        // under CPU oversubscription stretches all waits by a similar
        // factor, preserving ratios.
        if us < 200 {
            let deadline = self.origin.elapsed() + Duration::from_micros(us);
            while self.origin.elapsed() < deadline {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

/// Virtual time under test control. `sleep_us` advances the clock itself, so
/// single-threaded deterministic tests can express timeouts without waiting;
/// multi-threaded tests advance time from the driver thread via `advance`.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn shared() -> Arc<ManualClock> {
        Arc::new(ManualClock::new())
    }

    /// Advance virtual time by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }

    /// Set virtual time to an absolute value (must not move backwards).
    pub fn set(&self, us: u64) {
        let prev = self.now.swap(us, Ordering::SeqCst);
        debug_assert!(prev <= us, "ManualClock moved backwards");
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_us(&self, us: u64) {
        self.advance(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn system_clock_sleep_waits_at_least_requested() {
        let c = SystemClock::new();
        let start = c.now_us();
        c.sleep_us(200);
        assert!(c.now_us() - start >= 200);
    }

    #[test]
    fn system_clock_short_sleep_spins_accurately() {
        let c = SystemClock::new();
        let start = c.now_us();
        c.sleep_us(50);
        let elapsed = c.now_us() - start;
        assert!(elapsed >= 50);
    }

    #[test]
    fn manual_clock_is_fully_controlled() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(100);
        assert_eq!(c.now_us(), 100);
        c.sleep_us(50);
        assert_eq!(c.now_us(), 150);
        c.set(1000);
        assert_eq!(c.now_us(), 1000);
    }

    #[test]
    fn clock_trait_object_is_usable() {
        let clock: ClockRef = Arc::new(ManualClock::new());
        clock.sleep_us(42);
        assert_eq!(clock.now_us(), 42);
    }
}
